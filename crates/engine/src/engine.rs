//! The engine proper: a fixed worker pool fed by a bounded queue, with
//! content-addressed caching, single-flight dedup, explicit
//! backpressure, and graceful drain-then-stop shutdown.
//!
//! # Fault tolerance
//!
//! The engine assumes requests misbehave and computations fail, and
//! degrades instead of falling over:
//!
//! * **Deadlines** — a request may carry `deadline_ms` (or inherit
//!   [`EngineConfig::default_deadline_ms`]); a [`CancelToken`] threaded
//!   from admission through the queue into the simulation trial loops
//!   cancels the run cooperatively once it expires. Cancelled runs
//!   answer with a typed `deadline` error, record the stage they died
//!   in on their manifest, and never leave partial results in the
//!   cache.
//! * **Panic isolation** — worker threads wrap each evaluation in
//!   `catch_unwind`; a panicking computation becomes a typed `panic`
//!   error response (counted in [`crate::EngineMetrics::panics`]) and
//!   the worker survives to take the next job.
//! * **Load shedding** — a full queue rejects with `busy` plus a
//!   `retry_after_ms` hint scaled to the queue depth. When the queue
//!   has been saturated for [`EngineConfig::degraded_after_ms`], the
//!   engine enters cache-only *degraded mode*: hits are served (marked
//!   [`Evaluation::degraded`]), misses are shed immediately without
//!   queueing, until the queue fully drains.

use crate::cache::ResultCache;
use crate::canon;
use crate::compute;
use crate::error::EngineError;
use crate::flight::{FlightOutput, FlightTable, Role};
use crate::manifest::RunManifest;
use crate::metrics::{stage_summaries, EngineMetrics, Registry};
use crate::spec::{Scale, ScenarioResult, ScenarioSpec};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use solarstorm_sim::cancel::CancelToken;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Duration → nanoseconds, saturating at `u64::MAX`.
fn dur_ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Engine sizing and behavior knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Fixed number of worker threads.
    pub workers: usize,
    /// Bounded queue capacity; a full queue rejects with
    /// [`EngineError::Busy`] instead of growing without bound.
    pub queue_cap: usize,
    /// Result-cache entry cap (0 disables caching).
    pub cache_cap: usize,
    /// Dataset bundle to pre-build at startup, so the first request
    /// doesn't pay generation latency. `None` builds lazily.
    pub prewarm: Option<Scale>,
    /// Deadline applied to requests that don't set their own
    /// `deadline_ms`. `None` (the default) leaves such requests
    /// un-deadlined.
    pub default_deadline_ms: Option<u64>,
    /// How long the queue must stay saturated (every submission
    /// rejected) before the engine enters cache-only degraded mode.
    /// `None` (the default) disables degraded mode; backpressure is
    /// then per-request `busy` rejections only.
    pub degraded_after_ms: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        EngineConfig {
            workers: cores.clamp(1, 8),
            queue_cap: 64,
            cache_cap: 256,
            prewarm: None,
            default_deadline_ms: None,
            degraded_after_ms: None,
        }
    }
}

/// One successfully answered request.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The (possibly shared) scenario result.
    pub result: Arc<ScenarioResult>,
    /// Whether the answer came straight from the result cache.
    pub cached: bool,
    /// Whether the answer was served while the engine was in
    /// cache-only degraded mode (always a cache hit when set).
    pub degraded: bool,
    /// The scenario's FNV-1a content hash.
    pub hash: u64,
    /// Provenance: spec identity plus per-stage wall-time breakdown.
    pub manifest: RunManifest,
}

/// One failed request: the typed error plus the run manifest as far as
/// it got. For deadline failures the manifest records
/// [`RunManifest::cancelled_at_stage`], so a client can tell *where*
/// the run died and that its partial work was discarded.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// The typed failure.
    pub error: EngineError,
    /// Provenance up to the failure point. `None` only when the spec
    /// failed validation or hashing — before a manifest existed.
    pub manifest: Option<RunManifest>,
}

impl From<EngineError> for FailureReport {
    fn from(error: EngineError) -> Self {
        FailureReport {
            error,
            manifest: None,
        }
    }
}

/// A read-only view over *other* caches, consulted on a confirmed
/// local cache miss before paying for compute. A sharded runtime passes
/// one that probes sibling shards; a standalone engine never sees it.
///
/// The probe runs on the request path of a miss, so implementations
/// must be cheap — a bounded number of lock-and-lookup operations, no
/// compute, no blocking on in-flight work.
pub trait HedgeProbe: Sync {
    /// Returns the cached result for `(hash, canon)` — and the id of
    /// the shard that held it — if any sibling does. `canon` is the
    /// canonical spec serialization; a correct implementation must
    /// verify it (hash collisions are misses).
    fn probe(&self, hash: u64, canon: &str) -> Option<(u32, Arc<ScenarioResult>)>;
}

struct Job {
    canon: String,
    hash: u64,
    spec: ScenarioSpec,
    /// The request's deadline token; workers check it before starting
    /// and the compute layer polls it between trials.
    cancel: CancelToken,
    /// When the job entered the bounded queue; the picking worker turns
    /// this into the `queue_wait` stage.
    enqueued: Instant,
    /// The submitting request's trace context, if it is being traced:
    /// the worker installs it so compute spans join the request's tree.
    trace: Option<solarstorm_obs::SpanCtx>,
}

/// State shared between the public handle and the worker threads.
///
/// The cache and metrics registry sit behind their own `Arc`s so a
/// supervised respawn ([`Engine::respawn_from`]) can hand them to a
/// replacement engine: the fresh worker pool starts with the previous
/// incarnation's warm cache partition and monotonic counters, while the
/// flight table and saturation episode — state tied to the old pool's
/// in-flight work — start fresh.
struct Shared {
    cache: Arc<ResultCache>,
    flights: FlightTable,
    metrics: Arc<Registry>,
    /// When the queue first rejected a submission of the current
    /// saturation episode; cleared on any successful submission.
    saturated_since: Mutex<Option<Instant>>,
}

/// The concurrent scenario-evaluation service.
///
/// Cheap to share behind an `Arc`; every public method takes `&self`.
/// Dropping the engine shuts it down gracefully (drain, then stop).
pub struct Engine {
    shared: Arc<Shared>,
    tx: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    accepting: AtomicBool,
    default_deadline_ms: Option<u64>,
    degraded_after: Option<Duration>,
}

impl Engine {
    /// Builds the engine and starts its worker pool.
    pub fn new(cfg: EngineConfig) -> Self {
        let cache = Arc::new(ResultCache::new(cfg.cache_cap));
        Engine::build(cfg, cache, Arc::new(Registry::default()))
    }

    /// Builds a replacement for `prev` — a supervised respawn. The new
    /// engine starts a fresh worker pool, queue, and flight table, but
    /// adopts `prev`'s result cache (so recovery is warm: the work the
    /// old incarnation already paid for still answers from cache) and
    /// its metrics registry (counters stay monotonic across the
    /// respawn, as a scrape expects). Any degraded-mode flag the old
    /// incarnation left set is cleared. `prev` itself is untouched —
    /// callers typically [`Engine::abandon`] it first.
    ///
    /// The adopted cache keeps its original capacity; `cfg.cache_cap`
    /// is ignored on this path.
    pub fn respawn_from(prev: &Engine, cfg: EngineConfig) -> Engine {
        let cache = Arc::clone(&prev.shared.cache);
        let metrics = Arc::clone(&prev.shared.metrics);
        metrics.degraded.store(0, Ordering::Relaxed);
        Engine::build(cfg, cache, metrics)
    }

    fn build(cfg: EngineConfig, cache: Arc<ResultCache>, metrics: Arc<Registry>) -> Self {
        if let Some(scale) = cfg.prewarm {
            let _ = compute::datasets(scale);
        }
        let shared = Arc::new(Shared {
            cache,
            flights: FlightTable::default(),
            metrics,
            saturated_since: Mutex::new(None),
        });
        let (tx, rx) = bounded::<Job>(cfg.queue_cap.max(1));
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx: Receiver<Job> = rx.clone();
                // Startup-time spawn failure leaves no service to run;
                // failing fast here beats limping up with zero workers
                // and deadlocking the first request.
                #[allow(clippy::expect_used)]
                let handle = std::thread::Builder::new()
                    .name(format!("storm-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawn worker thread");
                handle
            })
            .collect();
        Engine {
            shared,
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            accepting: AtomicBool::new(true),
            default_deadline_ms: cfg.default_deadline_ms,
            degraded_after: cfg.degraded_after_ms.map(Duration::from_millis),
        }
    }

    /// Evaluates one scenario, blocking until the answer is available.
    ///
    /// Identical concurrent requests share a single computation
    /// (single-flight); repeated requests are served from the cache; a
    /// full queue fails fast with [`EngineError::Busy`]. See
    /// [`Engine::evaluate_full`] for the variant that also returns the
    /// failure manifest.
    pub fn evaluate(&self, spec: &ScenarioSpec) -> Result<Evaluation, EngineError> {
        self.evaluate_full(spec).map_err(|f| f.error)
    }

    /// Like [`Engine::evaluate`], but failures carry a
    /// [`FailureReport`] with the run manifest as far as it got —
    /// including `cancelled_at_stage` for deadline failures.
    // FailureReport inlines the manifest. Failures are the rare path and
    // requests block on simulations; boxing would buy nothing.
    #[allow(clippy::result_large_err)]
    pub fn evaluate_full(&self, spec: &ScenarioSpec) -> Result<Evaluation, FailureReport> {
        self.evaluate_counted(spec, None, None)
    }

    /// Like [`Engine::evaluate_full`], for an engine running as shard
    /// `shard` of a sharded runtime: the manifest records the shard id,
    /// and on a confirmed local cache miss the `probe` (sibling shards'
    /// caches, read-only) is consulted before the job is queued for
    /// compute. A hedge hit is adopted into the local cache, counted in
    /// [`crate::EngineMetrics::hedge_hits`], and marked
    /// `hedge_hit: true` on the manifest.
    #[allow(clippy::result_large_err)]
    pub fn evaluate_full_hedged(
        &self,
        spec: &ScenarioSpec,
        shard: u32,
        probe: Option<&dyn HedgeProbe>,
    ) -> Result<Evaluation, FailureReport> {
        self.evaluate_counted(spec, Some(shard), probe)
    }

    /// Reads the result cache without scheduling any work: the hedge
    /// probe's view of this engine when it runs as a shard. Verifies
    /// `canon` like every cache read (a hash collision is a miss).
    pub fn peek_cache(&self, hash: u64, canon: &str) -> Option<Arc<ScenarioResult>> {
        self.shared.cache.get(hash, canon)
    }

    #[allow(clippy::result_large_err)]
    fn evaluate_counted(
        &self,
        spec: &ScenarioSpec,
        shard: Option<u32>,
        probe: Option<&dyn HedgeProbe>,
    ) -> Result<Evaluation, FailureReport> {
        let t0 = Instant::now();
        let m = &self.shared.metrics;
        m.requests.fetch_add(1, Ordering::Relaxed);
        // When the request is traced, everything below — stage spans on
        // this thread, worker compute spans, hedge probes — nests under
        // this per-engine span (a no-op otherwise).
        let mut tspan = solarstorm_obs::trace::span(
            if shard.is_some() {
                "shard_eval"
            } else {
                "engine_eval"
            },
            match shard {
                Some(s) => vec![("shard", solarstorm_obs::FieldValue::from(s))],
                None => Vec::new(),
            },
        );
        let mut out = self.evaluate_inner(spec, shard, probe);
        if let Ok(ev) = &mut out {
            // Adaptive runs report realized precision wherever the
            // answer came from — fresh compute, cache, dedup, or hedge.
            ev.manifest.note_precision(&ev.result);
        }
        match &out {
            Ok(ev) => {
                tspan.record("cache", solarstorm_obs::FieldValue::from(ev.cached));
                if let Some(hit) = ev.manifest.hedge_hit {
                    tspan.record("hedge_hit", solarstorm_obs::FieldValue::from(hit));
                }
            }
            Err(f) => {
                tspan.record("error", solarstorm_obs::FieldValue::from(f.error.code()));
                if let Some(stage) = f
                    .manifest
                    .as_ref()
                    .and_then(|mf| mf.cancelled_at_stage.clone())
                {
                    tspan.record(
                        "cancelled_at_stage",
                        solarstorm_obs::FieldValue::from(stage),
                    );
                }
            }
        }
        drop(tspan);
        let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        m.record_latency(us);
        match &out {
            Ok(_) => {
                m.completed.fetch_add(1, Ordering::Relaxed);
            }
            // Backpressure is counted at the rejection/shed site.
            Err(f) if matches!(f.error, EngineError::Busy { .. }) => {}
            Err(f) => {
                m.errors.fetch_add(1, Ordering::Relaxed);
                if matches!(f.error, EngineError::DeadlineExceeded { .. }) {
                    m.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        out
    }

    /// Jobs currently sitting in the bounded queue.
    fn queue_len(&self) -> usize {
        self.tx.lock().as_ref().map_or(0, |s| s.len())
    }

    /// Client backoff hint: ~100 ms per queued job ahead of the caller,
    /// clamped to `[100, 5000]` ms.
    fn retry_hint_ms(&self) -> u64 {
        (100 * (1 + self.queue_len() as u64)).clamp(100, 5_000)
    }

    /// Records one rejected submission. Once rejections have been
    /// continuous for the configured window, flips the engine into
    /// cache-only degraded mode.
    fn note_queue_full(&self) {
        let Some(window) = self.degraded_after else {
            return;
        };
        let mut since = self.shared.saturated_since.lock();
        let start = *since.get_or_insert_with(Instant::now);
        if start.elapsed() >= window && self.shared.metrics.degraded.swap(1, Ordering::Relaxed) == 0
        {
            solarstorm_obs::event!(
                solarstorm_obs::Level::Warn,
                "degraded_enter",
                saturated_ms = start.elapsed().as_millis() as u64
            );
        }
    }

    /// Records one accepted submission, ending any saturation episode.
    fn note_queue_ok(&self) {
        if self.degraded_after.is_some() {
            *self.shared.saturated_since.lock() = None;
        }
    }

    /// In degraded mode returns the `retry_after_ms` hint the shed
    /// response should carry; exits degraded mode (returning `None`)
    /// once the queue has fully drained.
    fn shed_if_degraded(&self) -> Option<u64> {
        let m = &self.shared.metrics;
        if m.degraded.load(Ordering::Relaxed) == 0 {
            return None;
        }
        if self.queue_len() == 0 {
            m.degraded.store(0, Ordering::Relaxed);
            *self.shared.saturated_since.lock() = None;
            solarstorm_obs::event!(solarstorm_obs::Level::Info, "degraded_exit");
            return None;
        }
        Some(self.retry_hint_ms())
    }

    /// Whether the engine is currently in cache-only degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.shared.metrics.degraded.load(Ordering::Relaxed) != 0
    }

    #[allow(clippy::result_large_err)]
    fn evaluate_inner(
        &self,
        spec: &ScenarioSpec,
        shard: Option<u32>,
        probe: Option<&dyn HedgeProbe>,
    ) -> Result<Evaluation, FailureReport> {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(EngineError::ShuttingDown.into());
        }
        let t = Instant::now();
        compute::validate(spec).map_err(FailureReport::from)?;
        let validate_ns = dur_ns(t.elapsed());
        solarstorm_obs::record_stage("validate", validate_ns);
        solarstorm_obs::trace::record_rel("validate", validate_ns, Vec::new());

        // Neither the deadline nor the trace flag is part of the
        // scenario's identity: hash with both cleared, so deadlined,
        // traced, and bare requests for the same work share a cache
        // entry and a flight.
        let t = Instant::now();
        let hash_spec = ScenarioSpec {
            deadline_ms: None,
            trace: false,
            ..spec.clone()
        };
        let (canon, hash) = canon::content_hash(&hash_spec)
            .map_err(|e| EngineError::InvalidSpec(format!("unserializable spec: {e}")))?;
        let hash_ns = dur_ns(t.elapsed());
        solarstorm_obs::record_stage("hash", hash_ns);
        solarstorm_obs::trace::record_rel("hash", hash_ns, Vec::new());

        let mut manifest = RunManifest::new(spec, hash);
        manifest.shard = shard;
        manifest.push_stage("validate", validate_ns);
        manifest.push_stage("hash", hash_ns);
        let m = &self.shared.metrics;

        // The deadline clock starts at admission: queue wait counts.
        let cancel = match spec.deadline_ms.or(self.default_deadline_ms) {
            Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
            None => CancelToken::none(),
        };

        let t = Instant::now();
        let first_lookup = self.shared.cache.get(hash, &canon);
        let lookup_ns = dur_ns(t.elapsed());
        solarstorm_obs::record_stage("cache_lookup", lookup_ns);
        solarstorm_obs::trace::record_rel(
            "cache_lookup",
            lookup_ns,
            vec![(
                "hit",
                solarstorm_obs::FieldValue::from(first_lookup.is_some()),
            )],
        );
        manifest.push_stage("cache_lookup", lookup_ns);
        if let Some(result) = first_lookup {
            m.cache_hits.fetch_add(1, Ordering::Relaxed);
            solarstorm_obs::event!(
                solarstorm_obs::Level::Debug,
                "cache_hit",
                hash = manifest.spec_hash.clone()
            );
            return Ok(Evaluation {
                result,
                cached: true,
                degraded: self.is_degraded(),
                hash,
                manifest,
            });
        }
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        solarstorm_obs::event!(
            solarstorm_obs::Level::Debug,
            "cache_miss",
            hash = manifest.spec_hash.clone()
        );

        match self.shared.flights.join_or_lead(&canon) {
            Role::Join(flight) => {
                m.dedup_joins.fetch_add(1, Ordering::Relaxed);
                solarstorm_obs::event!(
                    solarstorm_obs::Level::Debug,
                    "dedup_join",
                    hash = manifest.spec_hash.clone()
                );
                let t = Instant::now();
                let out = flight.wait_with_cancel(&cancel);
                let wait_ns = dur_ns(t.elapsed());
                solarstorm_obs::record_stage("dedup_wait", wait_ns);
                solarstorm_obs::trace::record_rel("dedup_wait", wait_ns, Vec::new());
                manifest.push_stage("dedup_wait", wait_ns);
                let out = match out {
                    Ok(out) => out,
                    Err(e) => return Err(fail(e, manifest)),
                };
                // A follower shares the leader's computation, so its
                // manifest reports the leader's queue/compute cost —
                // and its trace inherits the leader's compute span (on
                // the synthetic shared track, tagged with the leader's
                // trace id so the two traces correlate).
                let mut attrs = vec![("shared", solarstorm_obs::FieldValue::from(true))];
                if out.leader_trace != 0 {
                    attrs.push((
                        "leader_trace",
                        solarstorm_obs::FieldValue::from(format!("{:016x}", out.leader_trace)),
                    ));
                }
                solarstorm_obs::trace::record_shared("compute", out.compute_ns, attrs);
                manifest.push_stage("queue_wait", out.queue_wait_ns);
                manifest.push_stage("compute", out.compute_ns);
                Ok(Evaluation {
                    result: out.result,
                    cached: false,
                    degraded: false,
                    hash,
                    manifest,
                })
            }
            Role::Lead(flight) => {
                // A completed computation may have filled the cache
                // between our miss and taking the lead.
                if let Some(result) = self.shared.cache.get(hash, &canon) {
                    self.shared.flights.complete(
                        &canon,
                        Ok(FlightOutput {
                            result: Arc::clone(&result),
                            queue_wait_ns: 0,
                            compute_ns: 0,
                            leader_trace: 0,
                        }),
                    );
                    m.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Evaluation {
                        result,
                        cached: true,
                        degraded: self.is_degraded(),
                        hash,
                        manifest,
                    });
                }
                // Hedged read: a confirmed local miss probes sibling
                // shards' caches (read-only) before paying for compute.
                // A hit is adopted locally and completes the flight, so
                // followers share it too.
                if let Some(probe) = probe {
                    let t = Instant::now();
                    let hedged = probe.probe(hash, &canon);
                    let probe_ns = dur_ns(t.elapsed());
                    solarstorm_obs::record_stage("hedge_probe", probe_ns);
                    let mut probe_attrs =
                        vec![("hit", solarstorm_obs::FieldValue::from(hedged.is_some()))];
                    if let Some((src_shard, _)) = &hedged {
                        // Names the sibling shard whose cache answered:
                        // the cross-shard edge in the request's trace.
                        probe_attrs
                            .push(("src_shard", solarstorm_obs::FieldValue::from(*src_shard)));
                    }
                    solarstorm_obs::trace::record_rel("hedge_probe", probe_ns, probe_attrs);
                    manifest.push_stage("hedge_probe", probe_ns);
                    if let Some((_, result)) = hedged {
                        m.hedge_hits.fetch_add(1, Ordering::Relaxed);
                        solarstorm_obs::event!(
                            solarstorm_obs::Level::Debug,
                            "hedge_hit",
                            hash = manifest.spec_hash.clone()
                        );
                        manifest.hedge_hit = Some(true);
                        self.shared
                            .cache
                            .insert(hash, canon.clone(), Arc::clone(&result));
                        self.shared.flights.complete(
                            &canon,
                            Ok(FlightOutput {
                                result: Arc::clone(&result),
                                queue_wait_ns: 0,
                                compute_ns: 0,
                                leader_trace: 0,
                            }),
                        );
                        return Ok(Evaluation {
                            result,
                            cached: true,
                            degraded: self.is_degraded(),
                            hash,
                            manifest,
                        });
                    }
                    m.hedge_misses.fetch_add(1, Ordering::Relaxed);
                    manifest.hedge_hit = Some(false);
                }
                // Degraded mode: this is a confirmed miss, so shed it
                // before it can occupy a queue slot.
                if let Some(retry_after_ms) = self.shed_if_degraded() {
                    m.load_shed.fetch_add(1, Ordering::Relaxed);
                    solarstorm_obs::event!(
                        solarstorm_obs::Level::Warn,
                        "load_shed",
                        hash = manifest.spec_hash.clone()
                    );
                    let err = EngineError::Busy { retry_after_ms };
                    self.shared.flights.complete(&canon, Err(err.clone()));
                    return Err(fail(err, manifest));
                }
                let job = Job {
                    canon: canon.clone(),
                    hash,
                    spec: spec.clone(),
                    cancel,
                    enqueued: Instant::now(),
                    trace: solarstorm_obs::trace::current(),
                };
                let sender = self.tx.lock().clone();
                let Some(sender) = sender else {
                    self.shared
                        .flights
                        .complete(&canon, Err(EngineError::ShuttingDown));
                    return Err(fail(EngineError::ShuttingDown, manifest));
                };
                m.queue_depth.fetch_add(1, Ordering::Relaxed);
                match sender.try_send(job) {
                    Ok(()) => self.note_queue_ok(),
                    Err(TrySendError::Full(_)) => {
                        m.dec_queue_depth();
                        m.rejected_busy.fetch_add(1, Ordering::Relaxed);
                        self.note_queue_full();
                        solarstorm_obs::event!(
                            solarstorm_obs::Level::Warn,
                            "rejected_busy",
                            hash = manifest.spec_hash.clone()
                        );
                        let err = EngineError::Busy {
                            retry_after_ms: self.retry_hint_ms(),
                        };
                        self.shared.flights.complete(&canon, Err(err.clone()));
                        return Err(fail(err, manifest));
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        m.dec_queue_depth();
                        self.shared
                            .flights
                            .complete(&canon, Err(EngineError::ShuttingDown));
                        return Err(fail(EngineError::ShuttingDown, manifest));
                    }
                }
                // The worker always completes the flight — on a
                // deadline it completes it with the deadline error —
                // so the leader waits without its own timeout.
                let out = match flight.wait() {
                    Ok(out) => out,
                    Err(e) => return Err(fail(e, manifest)),
                };
                manifest.push_stage("queue_wait", out.queue_wait_ns);
                manifest.push_stage("compute", out.compute_ns);
                Ok(Evaluation {
                    result: out.result,
                    cached: false,
                    degraded: false,
                    hash,
                    manifest,
                })
            }
        }
    }

    /// A point-in-time snapshot of the service counters, including the
    /// process-wide per-stage timing aggregates.
    pub fn metrics(&self) -> EngineMetrics {
        self.shared
            .metrics
            .snapshot(self.shared.cache.len(), stage_summaries())
    }

    /// Graceful shutdown: stop accepting, let workers drain every
    /// queued job (all blocked callers receive their responses), then
    /// join the pool. Idempotent.
    pub fn shutdown(&self) {
        self.accepting.store(false, Ordering::Release);
        // Dropping the only Sender closes the channel once drained.
        drop(self.tx.lock().take());
        let handles = std::mem::take(&mut *self.workers.lock());
        for h in handles {
            let _ = h.join();
        }
    }

    /// Shutdown for a wedged engine: stop accepting and close the
    /// queue like [`Engine::shutdown`], but *detach* the worker threads
    /// instead of joining them. A supervisor quarantining a shard whose
    /// workers are stalled (or livelocked) must not block behind them;
    /// abandoned workers that are still responsive drain the remaining
    /// queue — completing their callers' flights — and then exit on
    /// their own, while truly wedged ones are left behind harmlessly.
    /// Idempotent, and safe to follow with [`Engine::respawn_from`].
    pub fn abandon(&self) {
        self.accepting.store(false, Ordering::Release);
        drop(self.tx.lock().take());
        // JoinHandle's drop detaches the thread.
        drop(std::mem::take(&mut *self.workers.lock()));
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Builds a [`FailureReport`], marking the manifest's cancellation
/// stage for deadline errors.
fn fail(error: EngineError, mut manifest: RunManifest) -> FailureReport {
    if let EngineError::DeadlineExceeded { stage } = &error {
        manifest.mark_cancelled(stage);
    }
    FailureReport {
        error,
        manifest: Some(manifest),
    }
}

/// Renders a caught panic payload for the typed `panic` error response.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_loop(shared: &Shared, rx: &Receiver<Job>) {
    // recv drains remaining queued jobs after the sender drops, then
    // errors out — exactly the drain-then-stop semantics we want.
    while let Ok(job) = rx.recv() {
        shared.metrics.dec_queue_depth();
        let queue_wait_ns = dur_ns(job.enqueued.elapsed());
        solarstorm_obs::record_stage("queue_wait", queue_wait_ns);
        // Traced jobs carry their request's context across the queue:
        // install it for this job so compute spans join the tree, and
        // backfill the time the job spent queued as a span of its own.
        let _trace = job
            .trace
            .as_ref()
            .map(|ctx| solarstorm_obs::trace::enter_remote(ctx.clone()));
        solarstorm_obs::trace::record_rel("queue_wait", queue_wait_ns, Vec::new());
        // A deadline that expired while the job sat in the queue:
        // don't start work whose answer nobody can use.
        if job.cancel.is_cancelled() {
            shared.flights.complete(
                &job.canon,
                Err(EngineError::DeadlineExceeded {
                    stage: "queue_wait",
                }),
            );
            continue;
        }
        shared.metrics.computations.fetch_add(1, Ordering::Relaxed);
        let t = Instant::now();
        // Panic isolation: a panicking evaluation must cost exactly one
        // response, not a worker thread. AssertUnwindSafe is sound here
        // because the closure only touches the job (consumed with the
        // panic) and `compute`'s shared dataset caches, which are
        // initialize-once (`OnceLock`) and never left half-written.
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _span = solarstorm_obs::span!(
                "engine_compute",
                hash = format!("{:016x}", job.hash),
                queue_wait_us = queue_wait_ns / 1_000
            );
            #[cfg(feature = "chaos")]
            if solarstorm_obs::chaos::inject("engine.worker") {
                return Err(EngineError::Compute(
                    "chaos: injected error at engine.worker".into(),
                ));
            }
            compute::evaluate(&job.spec, &job.cancel).map(Arc::new)
        }))
        .unwrap_or_else(|payload| {
            shared.metrics.panics.fetch_add(1, Ordering::Relaxed);
            let message = panic_message(payload.as_ref());
            solarstorm_obs::event!(
                solarstorm_obs::Level::Error,
                "worker_panicked",
                hash = format!("{:016x}", job.hash),
                message = message.clone()
            );
            Err(EngineError::Panicked { message })
        });
        let compute_ns = dur_ns(t.elapsed());
        // Only completed computations reach the cache: cancelled or
        // panicked runs are errors here and are never inserted — and
        // neither are deadline-cut best-effort adaptive results, which
        // answer the request that paid for them but would short-change
        // every later request for the same scenario.
        match &result {
            Ok(value) if value.best_effort() => {
                shared
                    .metrics
                    .best_effort_results
                    .fetch_add(1, Ordering::Relaxed);
                solarstorm_obs::event!(
                    solarstorm_obs::Level::Debug,
                    "best_effort_result",
                    hash = format!("{:016x}", job.hash)
                );
            }
            Ok(value) => {
                shared
                    .cache
                    .insert(job.hash, job.canon.clone(), Arc::clone(value));
            }
            Err(_) => {}
        }
        shared.flights.complete(
            &job.canon,
            result.map(|result| FlightOutput {
                result,
                queue_wait_ns,
                compute_ns,
                leader_trace: job.trace.as_ref().map_or(0, |c| c.trace_id()),
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AnalysisRequest;

    fn sleep_spec(ms: u64) -> ScenarioSpec {
        ScenarioSpec {
            analysis: AnalysisRequest::Sleep { ms },
            ..Default::default()
        }
    }

    fn deadlined_sleep(ms: u64, deadline_ms: u64) -> ScenarioSpec {
        ScenarioSpec {
            deadline_ms: Some(deadline_ms),
            ..sleep_spec(ms)
        }
    }

    /// Polls until `cond` holds or ~2 s pass.
    fn wait_for(mut cond: impl FnMut() -> bool) -> bool {
        for _ in 0..400 {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        cond()
    }

    #[test]
    fn evaluate_then_cache_hit() {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            ..Default::default()
        });
        let spec = sleep_spec(5);
        let cold = engine.evaluate(&spec).unwrap();
        assert!(!cold.cached);
        assert!(!cold.degraded);
        let warm = engine.evaluate(&spec).unwrap();
        assert!(warm.cached);
        assert_eq!(cold.hash, warm.hash);
        let m = engine.metrics();
        assert_eq!(m.requests, 2);
        assert_eq!(m.computations, 1);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        assert_eq!(m.panics, 0);
        assert_eq!(m.deadline_exceeded, 0);
    }

    #[test]
    fn manifests_share_identity_modulo_timings() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..Default::default()
        });
        let spec = sleep_spec(2);
        let cold = engine.evaluate(&spec).unwrap();
        let warm = engine.evaluate(&spec).unwrap();
        assert!(cold.manifest.same_identity(&warm.manifest));
        assert_eq!(cold.manifest.spec_hash, format!("{:016x}", cold.hash));
        assert_eq!(cold.manifest.seed, spec.mc.seed);
        assert!(cold.manifest.stages.iter().all(|s| s.ns > 0));
        assert!(
            cold.manifest.stage_ns("compute").unwrap() >= 1_000_000,
            "a 2 ms sleep must show up in the compute stage"
        );
        assert!(
            warm.manifest.stage_ns("compute").is_none(),
            "a cache hit skips the compute stages"
        );
        assert!(warm.manifest.stage_ns("cache_lookup").is_some());
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let engine = Engine::new(EngineConfig::default());
        engine.shutdown();
        assert_eq!(
            engine.evaluate(&sleep_spec(1)).unwrap_err(),
            EngineError::ShuttingDown
        );
        engine.shutdown(); // idempotent
    }

    #[test]
    fn invalid_spec_does_not_reach_a_worker() {
        let engine = Engine::new(EngineConfig::default());
        let err = engine.evaluate(&sleep_spec(60_000)).unwrap_err();
        assert_eq!(err.code(), "invalid_spec");
        assert_eq!(engine.metrics().computations, 0);
    }

    #[test]
    fn deadline_is_excluded_from_the_cache_identity() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..Default::default()
        });
        let cold = engine.evaluate(&sleep_spec(5)).unwrap();
        // Same work, generous deadline: must be the same cache entry.
        let warm = engine.evaluate(&deadlined_sleep(5, 60_000)).unwrap();
        assert!(warm.cached, "deadline must not change the content hash");
        assert_eq!(cold.hash, warm.hash);
    }

    #[test]
    fn expired_deadline_cancels_and_caches_nothing() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..Default::default()
        });
        let t0 = Instant::now();
        let report = engine
            .evaluate_full(&deadlined_sleep(2_000, 30))
            .unwrap_err();
        assert_eq!(report.error.code(), "deadline");
        assert!(
            t0.elapsed() < Duration::from_millis(1_500),
            "cancellation must abandon the sleep early"
        );
        let manifest = report.manifest.expect("post-hash failures carry manifests");
        assert!(
            manifest.cancelled_at_stage.is_some(),
            "the manifest must record where the run died"
        );
        assert_eq!(engine.metrics().deadline_exceeded, 1);
        // The cancelled run must not have poisoned the cache: the same
        // work without a deadline computes fresh and succeeds.
        let clean = engine.evaluate(&sleep_spec(2_000)).unwrap();
        assert!(!clean.cached, "a cancelled run must never be cached");
    }

    #[test]
    fn engine_default_deadline_applies_to_bare_specs() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            default_deadline_ms: Some(30),
            ..Default::default()
        });
        let err = engine.evaluate(&sleep_spec(2_000)).unwrap_err();
        assert_eq!(err.code(), "deadline");
        // A per-spec deadline overrides the engine default.
        let ok = engine.evaluate(&deadlined_sleep(50, 60_000)).unwrap();
        assert_eq!(*ok.result, ScenarioResult::Slept { ms: 50 });
    }

    #[test]
    fn busy_rejections_carry_a_retry_hint() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            queue_cap: 1,
            ..Default::default()
        });
        let engine = Arc::new(engine);
        // Occupy the worker and then the single queue slot.
        let mut held = Vec::new();
        for ms in [300, 301] {
            let engine = Arc::clone(&engine);
            held.push(std::thread::spawn(move || engine.evaluate(&sleep_spec(ms))));
        }
        assert!(
            wait_for(|| engine.metrics().queue_depth >= 1),
            "the queue slot must fill"
        );
        let err = engine.evaluate(&sleep_spec(302)).unwrap_err();
        match err {
            EngineError::Busy { retry_after_ms } => {
                assert!((100..=5_000).contains(&retry_after_ms), "{retry_after_ms}");
            }
            other => panic!("expected busy, got {other:?}"),
        }
        assert_eq!(err.code(), "busy");
        for h in held {
            h.join().unwrap().unwrap();
        }
    }

    #[test]
    fn precision_is_part_of_the_cache_identity_and_the_manifest() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..Default::default()
        });
        let fixed = ScenarioSpec::default();
        let adaptive = ScenarioSpec {
            precision: Some(solarstorm_sim::Precision {
                ci: 0.95,
                half_width: 5.0,
                max_trials: 1024,
            }),
            ..Default::default()
        };
        let a = engine.evaluate(&fixed).unwrap();
        let b = engine.evaluate(&adaptive).unwrap();
        assert_ne!(
            a.hash, b.hash,
            "precision must enter the scenario's cache identity"
        );
        assert!(!b.cached);
        assert!(a.manifest.trials_used.is_none());
        let used = b
            .manifest
            .trials_used
            .expect("adaptive manifests record trials_used");
        assert!((1..=1024).contains(&used));
        assert!(b.manifest.achieved_half_width.expect("recorded") <= 5.0);
        assert_eq!(b.manifest.precision_met, Some(true));
        assert_eq!(b.manifest.best_effort, Some(false));
        // A met adaptive result is cacheable — and the cache hit still
        // reports the realized precision on its manifest.
        let warm = engine.evaluate(&adaptive).unwrap();
        assert!(warm.cached);
        assert_eq!(warm.manifest.trials_used, b.manifest.trials_used);
        assert_eq!(engine.metrics().best_effort_results, 0);
    }

    #[test]
    fn deadlined_adaptive_runs_answer_best_effort_and_skip_the_cache() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..Default::default()
        });
        // An unreachable target under a tight deadline: the run is cut
        // short mid-budget. The timing race is inherent, so each branch
        // asserts its own invariants instead of assuming one outcome.
        let spec = ScenarioSpec {
            precision: Some(solarstorm_sim::Precision {
                ci: 0.999,
                half_width: 1e-9,
                max_trials: 100_000,
            }),
            deadline_ms: Some(25),
            ..Default::default()
        };
        match engine.evaluate_full(&spec) {
            Ok(ev) => {
                let report = match &*ev.result {
                    ScenarioResult::Stats { precision, .. } => {
                        precision.expect("adaptive stats report precision")
                    }
                    other => panic!("expected stats result, got {other:?}"),
                };
                if report.best_effort {
                    // At least one trial round completed before the
                    // deadline: the engine answers with the precision
                    // it achieved instead of a deadline error, and
                    // caches nothing.
                    assert!(!report.met);
                    assert!(report.trials_used < 100_000);
                    assert_eq!(ev.manifest.best_effort, Some(true));
                    assert_eq!(engine.metrics().best_effort_results, 1);
                    assert_eq!(engine.metrics().cache_entries, 0);
                } else {
                    // The whole budget fit inside the deadline: an
                    // exhausted-budget run is complete and cacheable.
                    assert_eq!(report.trials_used, 100_000);
                    assert_eq!(engine.metrics().cache_entries, 1);
                }
            }
            Err(report) => {
                // The deadline fired before the first trial round.
                assert_eq!(report.error.code(), "deadline");
                assert_eq!(engine.metrics().cache_entries, 0);
            }
        }
    }

    struct EngineProbe<'a>(&'a Engine);

    impl HedgeProbe for EngineProbe<'_> {
        fn probe(&self, hash: u64, canon: &str) -> Option<(u32, Arc<ScenarioResult>)> {
            self.0.peek_cache(hash, canon).map(|r| (9, r))
        }
    }

    #[test]
    fn hedge_probe_adopts_a_sibling_result() {
        let a = Engine::new(EngineConfig {
            workers: 1,
            ..Default::default()
        });
        let b = Engine::new(EngineConfig {
            workers: 1,
            ..Default::default()
        });
        let spec = sleep_spec(1);
        let computed = b.evaluate(&spec).unwrap();
        let probe = EngineProbe(&b);

        // a has never computed the spec: the hedge finds b's answer.
        let hedged = a.evaluate_full_hedged(&spec, 3, Some(&probe)).unwrap();
        assert!(hedged.cached);
        assert_eq!(hedged.manifest.shard, Some(3));
        assert_eq!(hedged.manifest.hedge_hit, Some(true));
        assert_eq!(*hedged.result, *computed.result);
        let m = a.metrics();
        assert_eq!(m.hedge_hits, 1);
        assert_eq!(m.computations, 0, "a hedge hit must not compute");

        // The hedge hit was adopted locally: the next request is a
        // plain cache hit, no probe outcome on its manifest.
        let warm = a.evaluate_full_hedged(&spec, 3, Some(&probe)).unwrap();
        assert!(warm.cached);
        assert!(warm.manifest.hedge_hit.is_none());

        // A probe miss computes locally and says so.
        let fresh = a
            .evaluate_full_hedged(&sleep_spec(2), 3, Some(&probe))
            .unwrap();
        assert!(!fresh.cached);
        assert_eq!(fresh.manifest.hedge_hit, Some(false));
        assert_eq!(a.metrics().hedge_misses, 1);
        // The unsharded path never probes and never marks manifests.
        let plain = b.evaluate_full(&spec).unwrap();
        assert!(plain.manifest.shard.is_none());
        assert!(plain.manifest.hedge_hit.is_none());
    }

    #[test]
    fn sustained_saturation_enters_and_drains_exit_degraded_mode() {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 1,
            queue_cap: 1,
            // Zero window: the first rejected submission already counts
            // as "sustained", which makes the test deterministic.
            degraded_after_ms: Some(0),
            ..Default::default()
        }));
        // Seed the cache while healthy.
        let seeded = engine.evaluate(&sleep_spec(5)).unwrap();
        assert!(!seeded.degraded);

        // Saturate: one job on the worker, one in the queue.
        let mut held = Vec::new();
        for ms in [400, 401] {
            let engine = Arc::clone(&engine);
            held.push(std::thread::spawn(move || engine.evaluate(&sleep_spec(ms))));
        }
        assert!(
            wait_for(|| engine.metrics().queue_depth >= 1),
            "the queue slot must fill"
        );
        // A rejected submission starts (and, with a zero window,
        // completes) the saturation episode.
        assert_eq!(
            engine.evaluate(&sleep_spec(402)).unwrap_err().code(),
            "busy"
        );
        assert!(engine.is_degraded());
        assert!(engine.metrics().degraded);

        // Degraded: misses shed without queueing, hits still answer.
        let shed = engine.evaluate(&sleep_spec(403)).unwrap_err();
        assert_eq!(shed.code(), "busy");
        assert!(shed.retry_after_ms().is_some());
        let hit = engine.evaluate(&sleep_spec(5)).unwrap();
        assert!(hit.cached);
        assert!(hit.degraded, "degraded cache hits must say so");
        let m = engine.metrics();
        assert!(m.load_shed >= 1, "shed misses must be counted");

        // Drain, then the next miss exits degraded mode and computes.
        for h in held {
            h.join().unwrap().unwrap();
        }
        assert!(wait_for(|| engine.metrics().queue_depth == 0));
        let fresh = engine.evaluate(&sleep_spec(404)).unwrap();
        assert!(!fresh.cached && !fresh.degraded);
        assert!(!engine.is_degraded());
        assert!(!engine.metrics().degraded);
    }

    #[test]
    fn respawn_adopts_the_cache_and_keeps_counters_monotonic() {
        let old = Engine::new(EngineConfig {
            workers: 1,
            ..Default::default()
        });
        let cold = old.evaluate(&sleep_spec(1)).unwrap();
        assert!(!cold.cached);
        old.abandon();
        assert_eq!(
            old.evaluate(&sleep_spec(1)).unwrap_err(),
            EngineError::ShuttingDown,
            "an abandoned engine accepts nothing"
        );
        let fresh = Engine::respawn_from(
            &old,
            EngineConfig {
                workers: 1,
                ..Default::default()
            },
        );
        // The respawned engine answers the old incarnation's work from
        // its adopted (warm) cache without recomputing…
        let warm = fresh.evaluate(&sleep_spec(1)).unwrap();
        assert!(warm.cached, "respawn must preserve the cache partition");
        assert_eq!(*warm.result, *cold.result);
        // …and the shared registry keeps counting across the respawn.
        let m = fresh.metrics();
        assert_eq!(m.computations, 1, "only the old incarnation computed");
        assert!(m.cache_hits >= 1);
        // The fresh pool computes new work normally.
        assert!(!fresh.evaluate(&sleep_spec(2)).unwrap().cached);
        old.shutdown(); // still idempotent after abandon
    }

    #[test]
    fn abandoned_workers_still_drain_their_queue() {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 1,
            queue_cap: 4,
            ..Default::default()
        }));
        // One job on the worker, one queued behind it.
        let mut held = Vec::new();
        for ms in [120, 121] {
            let engine = Arc::clone(&engine);
            held.push(std::thread::spawn(move || engine.evaluate(&sleep_spec(ms))));
        }
        assert!(
            wait_for(|| engine.metrics().queue_depth >= 1),
            "the second job must be queued"
        );
        // Abandon returns immediately — it must not block on the busy
        // worker — and the detached worker still answers both callers.
        let t0 = Instant::now();
        engine.abandon();
        assert!(t0.elapsed() < Duration::from_millis(100), "abandon blocked");
        for h in held {
            h.join().unwrap().unwrap();
        }
        assert!(wait_for(|| engine.metrics().queue_depth == 0));
    }

    #[test]
    fn traced_requests_record_a_span_tree_through_the_worker() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..Default::default()
        });
        let handle = solarstorm_obs::TraceHandle::begin("request", None);
        let out = engine.evaluate(&sleep_spec(3)).unwrap();
        let done = handle.finish(None);
        assert!(!out.cached);
        let names: Vec<&str> = done.spans.iter().map(|s| s.name).collect();
        for expected in [
            "request",
            "engine_eval",
            "validate",
            "hash",
            "cache_lookup",
            "queue_wait",
            "engine_compute",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        // The worker's compute span crossed threads but still nests
        // inside this request's tree, under the engine_eval span.
        let eval = done.spans.iter().find(|s| s.name == "engine_eval").unwrap();
        let compute = done
            .spans
            .iter()
            .find(|s| s.name == "engine_compute")
            .unwrap();
        assert_eq!(eval.parent, 1);
        assert_eq!(compute.parent, eval.id);
        assert!(done.spans.iter().all(|s| s.end_ns <= done.dur_ns + 1));
        // The eval span carries the cache outcome.
        assert!(eval
            .attrs
            .iter()
            .any(|(k, v)| *k == "cache" && matches!(v, solarstorm_obs::FieldValue::Bool(false))));
    }

    #[test]
    fn followers_inherit_the_leaders_compute_span() {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 1,
            queue_cap: 4,
            ..Default::default()
        }));
        // Occupy the worker, then queue the leader so its flight is
        // registered but unfinished when the traced follower arrives.
        let mut held = Vec::new();
        for ms in [300, 301] {
            let engine = Arc::clone(&engine);
            held.push(std::thread::spawn(move || engine.evaluate(&sleep_spec(ms))));
        }
        assert!(
            wait_for(|| engine.metrics().queue_depth >= 1),
            "the leader must be queued with its flight registered"
        );
        let handle = solarstorm_obs::TraceHandle::begin("request", None);
        let joined = engine.evaluate(&sleep_spec(301)).unwrap();
        let done = handle.finish(None);
        for h in held {
            h.join().unwrap().unwrap();
        }
        assert_eq!(*joined.result, ScenarioResult::Slept { ms: 301 });
        assert_eq!(engine.metrics().dedup_joins, 1);
        // The follower never computed, but its trace shows the shared
        // compute time it inherited from the leader, on the synthetic
        // track (the time was not spent on this request's threads).
        let compute = done
            .spans
            .iter()
            .find(|s| s.name == "compute" && s.thread == solarstorm_obs::trace::SHARED_THREAD)
            .expect("follower must inherit the leader's compute span");
        assert!(compute
            .attrs
            .iter()
            .any(|(k, v)| *k == "shared" && matches!(v, solarstorm_obs::FieldValue::Bool(true))));
        assert!(done.spans.iter().any(|s| s.name == "dedup_wait"));
    }
}
