//! The engine proper: a fixed worker pool fed by a bounded queue, with
//! content-addressed caching, single-flight dedup, explicit
//! backpressure, and graceful drain-then-stop shutdown.

use crate::cache::ResultCache;
use crate::canon;
use crate::compute;
use crate::error::EngineError;
use crate::flight::{FlightOutput, FlightTable, Role};
use crate::manifest::RunManifest;
use crate::metrics::{stage_summaries, EngineMetrics, Registry};
use crate::spec::{Scale, ScenarioResult, ScenarioSpec};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Duration → nanoseconds, saturating at `u64::MAX`.
fn dur_ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Engine sizing and behavior knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Fixed number of worker threads.
    pub workers: usize,
    /// Bounded queue capacity; a full queue rejects with
    /// [`EngineError::Busy`] instead of growing without bound.
    pub queue_cap: usize,
    /// Result-cache entry cap (0 disables caching).
    pub cache_cap: usize,
    /// Dataset bundle to pre-build at startup, so the first request
    /// doesn't pay generation latency. `None` builds lazily.
    pub prewarm: Option<Scale>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        EngineConfig {
            workers: cores.clamp(1, 8),
            queue_cap: 64,
            cache_cap: 256,
            prewarm: None,
        }
    }
}

/// One successfully answered request.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The (possibly shared) scenario result.
    pub result: Arc<ScenarioResult>,
    /// Whether the answer came straight from the result cache.
    pub cached: bool,
    /// The scenario's FNV-1a content hash.
    pub hash: u64,
    /// Provenance: spec identity plus per-stage wall-time breakdown.
    pub manifest: RunManifest,
}

struct Job {
    canon: String,
    hash: u64,
    spec: ScenarioSpec,
    /// When the job entered the bounded queue; the picking worker turns
    /// this into the `queue_wait` stage.
    enqueued: Instant,
}

/// State shared between the public handle and the worker threads.
struct Shared {
    cache: ResultCache,
    flights: FlightTable,
    metrics: Registry,
}

/// The concurrent scenario-evaluation service.
///
/// Cheap to share behind an `Arc`; every public method takes `&self`.
/// Dropping the engine shuts it down gracefully (drain, then stop).
pub struct Engine {
    shared: Arc<Shared>,
    tx: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    accepting: AtomicBool,
}

impl Engine {
    /// Builds the engine and starts its worker pool.
    pub fn new(cfg: EngineConfig) -> Self {
        if let Some(scale) = cfg.prewarm {
            let _ = compute::datasets(scale);
        }
        let shared = Arc::new(Shared {
            cache: ResultCache::new(cfg.cache_cap),
            flights: FlightTable::default(),
            metrics: Registry::default(),
        });
        let (tx, rx) = bounded::<Job>(cfg.queue_cap.max(1));
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx: Receiver<Job> = rx.clone();
                std::thread::Builder::new()
                    .name(format!("storm-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawn worker thread")
            })
            .collect();
        Engine {
            shared,
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            accepting: AtomicBool::new(true),
        }
    }

    /// Evaluates one scenario, blocking until the answer is available.
    ///
    /// Identical concurrent requests share a single computation
    /// (single-flight); repeated requests are served from the cache; a
    /// full queue fails fast with [`EngineError::Busy`].
    pub fn evaluate(&self, spec: &ScenarioSpec) -> Result<Evaluation, EngineError> {
        let t0 = Instant::now();
        let m = &self.shared.metrics;
        m.requests.fetch_add(1, Ordering::Relaxed);
        let out = self.evaluate_inner(spec);
        let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        m.record_latency(us);
        match &out {
            Ok(_) => {
                m.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(EngineError::Busy) => {} // counted at the rejection site
            Err(_) => {
                m.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        out
    }

    fn evaluate_inner(&self, spec: &ScenarioSpec) -> Result<Evaluation, EngineError> {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(EngineError::ShuttingDown);
        }
        let t = Instant::now();
        compute::validate(spec)?;
        let validate_ns = dur_ns(t.elapsed());
        solarstorm_obs::record_stage("validate", validate_ns);

        let t = Instant::now();
        let (canon, hash) = canon::content_hash(spec)
            .map_err(|e| EngineError::InvalidSpec(format!("unserializable spec: {e}")))?;
        let hash_ns = dur_ns(t.elapsed());
        solarstorm_obs::record_stage("hash", hash_ns);

        let mut manifest = RunManifest::new(spec, hash);
        manifest.push_stage("validate", validate_ns);
        manifest.push_stage("hash", hash_ns);
        let m = &self.shared.metrics;

        let t = Instant::now();
        let first_lookup = self.shared.cache.get(hash, &canon);
        let lookup_ns = dur_ns(t.elapsed());
        solarstorm_obs::record_stage("cache_lookup", lookup_ns);
        manifest.push_stage("cache_lookup", lookup_ns);
        if let Some(result) = first_lookup {
            m.cache_hits.fetch_add(1, Ordering::Relaxed);
            solarstorm_obs::event!(
                solarstorm_obs::Level::Debug,
                "cache_hit",
                hash = manifest.spec_hash.clone()
            );
            return Ok(Evaluation {
                result,
                cached: true,
                hash,
                manifest,
            });
        }
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        solarstorm_obs::event!(
            solarstorm_obs::Level::Debug,
            "cache_miss",
            hash = manifest.spec_hash.clone()
        );

        match self.shared.flights.join_or_lead(&canon) {
            Role::Join(flight) => {
                m.dedup_joins.fetch_add(1, Ordering::Relaxed);
                solarstorm_obs::event!(
                    solarstorm_obs::Level::Debug,
                    "dedup_join",
                    hash = manifest.spec_hash.clone()
                );
                let t = Instant::now();
                let out = flight.wait()?;
                let wait_ns = dur_ns(t.elapsed());
                solarstorm_obs::record_stage("dedup_wait", wait_ns);
                manifest.push_stage("dedup_wait", wait_ns);
                // A follower shares the leader's computation, so its
                // manifest reports the leader's queue/compute cost.
                manifest.push_stage("queue_wait", out.queue_wait_ns);
                manifest.push_stage("compute", out.compute_ns);
                Ok(Evaluation {
                    result: out.result,
                    cached: false,
                    hash,
                    manifest,
                })
            }
            Role::Lead(flight) => {
                // A completed computation may have filled the cache
                // between our miss and taking the lead.
                if let Some(result) = self.shared.cache.get(hash, &canon) {
                    self.shared.flights.complete(
                        &canon,
                        Ok(FlightOutput {
                            result: Arc::clone(&result),
                            queue_wait_ns: 0,
                            compute_ns: 0,
                        }),
                    );
                    m.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Evaluation {
                        result,
                        cached: true,
                        hash,
                        manifest,
                    });
                }
                let job = Job {
                    canon: canon.clone(),
                    hash,
                    spec: spec.clone(),
                    enqueued: Instant::now(),
                };
                let sender = self.tx.lock().clone();
                let Some(sender) = sender else {
                    self.shared
                        .flights
                        .complete(&canon, Err(EngineError::ShuttingDown));
                    return Err(EngineError::ShuttingDown);
                };
                m.queue_depth.fetch_add(1, Ordering::Relaxed);
                match sender.try_send(job) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        m.dec_queue_depth();
                        m.rejected_busy.fetch_add(1, Ordering::Relaxed);
                        solarstorm_obs::event!(
                            solarstorm_obs::Level::Warn,
                            "rejected_busy",
                            hash = manifest.spec_hash.clone()
                        );
                        self.shared.flights.complete(&canon, Err(EngineError::Busy));
                        return Err(EngineError::Busy);
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        m.dec_queue_depth();
                        self.shared
                            .flights
                            .complete(&canon, Err(EngineError::ShuttingDown));
                        return Err(EngineError::ShuttingDown);
                    }
                }
                let out = flight.wait()?;
                manifest.push_stage("queue_wait", out.queue_wait_ns);
                manifest.push_stage("compute", out.compute_ns);
                Ok(Evaluation {
                    result: out.result,
                    cached: false,
                    hash,
                    manifest,
                })
            }
        }
    }

    /// A point-in-time snapshot of the service counters, including the
    /// process-wide per-stage timing aggregates.
    pub fn metrics(&self) -> EngineMetrics {
        self.shared
            .metrics
            .snapshot(self.shared.cache.len(), stage_summaries())
    }

    /// Graceful shutdown: stop accepting, let workers drain every
    /// queued job (all blocked callers receive their responses), then
    /// join the pool. Idempotent.
    pub fn shutdown(&self) {
        self.accepting.store(false, Ordering::Release);
        // Dropping the only Sender closes the channel once drained.
        drop(self.tx.lock().take());
        let handles = std::mem::take(&mut *self.workers.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared, rx: &Receiver<Job>) {
    // recv drains remaining queued jobs after the sender drops, then
    // errors out — exactly the drain-then-stop semantics we want.
    while let Ok(job) = rx.recv() {
        shared.metrics.dec_queue_depth();
        shared.metrics.computations.fetch_add(1, Ordering::Relaxed);
        let queue_wait_ns = dur_ns(job.enqueued.elapsed());
        solarstorm_obs::record_stage("queue_wait", queue_wait_ns);
        let t = Instant::now();
        let result = {
            let _span = solarstorm_obs::span!(
                "engine_compute",
                hash = format!("{:016x}", job.hash),
                queue_wait_us = queue_wait_ns / 1_000
            );
            compute::evaluate(&job.spec).map(Arc::new)
        };
        let compute_ns = dur_ns(t.elapsed());
        if let Ok(value) = &result {
            shared
                .cache
                .insert(job.hash, job.canon.clone(), Arc::clone(value));
        }
        shared.flights.complete(
            &job.canon,
            result.map(|result| FlightOutput {
                result,
                queue_wait_ns,
                compute_ns,
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AnalysisRequest;

    fn sleep_spec(ms: u64) -> ScenarioSpec {
        ScenarioSpec {
            analysis: AnalysisRequest::Sleep { ms },
            ..Default::default()
        }
    }

    #[test]
    fn evaluate_then_cache_hit() {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            ..Default::default()
        });
        let spec = sleep_spec(5);
        let cold = engine.evaluate(&spec).unwrap();
        assert!(!cold.cached);
        let warm = engine.evaluate(&spec).unwrap();
        assert!(warm.cached);
        assert_eq!(cold.hash, warm.hash);
        let m = engine.metrics();
        assert_eq!(m.requests, 2);
        assert_eq!(m.computations, 1);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
    }

    #[test]
    fn manifests_share_identity_modulo_timings() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..Default::default()
        });
        let spec = sleep_spec(2);
        let cold = engine.evaluate(&spec).unwrap();
        let warm = engine.evaluate(&spec).unwrap();
        assert!(cold.manifest.same_identity(&warm.manifest));
        assert_eq!(cold.manifest.spec_hash, format!("{:016x}", cold.hash));
        assert_eq!(cold.manifest.seed, spec.mc.seed);
        assert!(cold.manifest.stages.iter().all(|s| s.ns > 0));
        assert!(
            cold.manifest.stage_ns("compute").unwrap() >= 1_000_000,
            "a 2 ms sleep must show up in the compute stage"
        );
        assert!(
            warm.manifest.stage_ns("compute").is_none(),
            "a cache hit skips the compute stages"
        );
        assert!(warm.manifest.stage_ns("cache_lookup").is_some());
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let engine = Engine::new(EngineConfig::default());
        engine.shutdown();
        assert_eq!(
            engine.evaluate(&sleep_spec(1)).unwrap_err(),
            EngineError::ShuttingDown
        );
        engine.shutdown(); // idempotent
    }

    #[test]
    fn invalid_spec_does_not_reach_a_worker() {
        let engine = Engine::new(EngineConfig::default());
        let err = engine.evaluate(&sleep_spec(60_000)).unwrap_err();
        assert_eq!(err.code(), "invalid_spec");
        assert_eq!(engine.metrics().computations, 0);
    }
}
