//! The newline-delimited JSON wire protocol shared by `stormsim serve`
//! (TCP) and `stormsim batch` (stdin/stdout).
//!
//! One request per line, one response per line, in order:
//!
//! ```text
//! → {"id":"q1","type":"scenario","spec":{"model":{"kind":"s1"}}}
//! ← {"id":"q1","ok":true,"hash":"…","result":{"kind":"stats","stats":{…}}}
//! → {"type":"metrics"}
//! ← {"ok":true,"result":{"requests":2,…}}
//! → {"type":"health"}
//! ← {"ok":true,"result":{"healthy":true,"shards":[{"shard":0,…}]}}
//! → not json
//! ← {"ok":false,"error":{"code":"parse","message":"…"}}
//! ```
//!
//! A bare [`ScenarioSpec`] object (no `type` tag) is also accepted and
//! treated as an id-less scenario request, which keeps `stormsim batch`
//! pipelines terse.

use crate::error::EngineError;
use crate::manifest::RunManifest;
use crate::service::ScenarioService;
use crate::spec::ScenarioSpec;
use serde::{Deserialize, Serialize};

/// What a request line asks for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum RequestBody {
    /// Evaluate one scenario.
    Scenario {
        /// The scenario to evaluate.
        spec: ScenarioSpec,
    },
    /// Return an [`crate::EngineMetrics`] snapshot.
    Metrics,
    /// Liveness probe; answers `"pong"`.
    Ping,
    /// Return per-shard supervision health: state machine position,
    /// breaker window stats, reroute counts. A single engine answers a
    /// trivially-healthy one-shard shape — see
    /// [`ScenarioService::health_value`].
    Health,
    /// Return completed traces from the flight recorder: the one named
    /// by the envelope's `trace_id`, or the most recent ones.
    Trace {
        /// Return at most this many traces, newest last (default: all
        /// retained).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        last: Option<usize>,
    },
}

/// One request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed back verbatim.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub id: Option<String>,
    /// Client-supplied trace id. On scenario requests, the id the
    /// request's trace is recorded under (up to 16 hex digits; any
    /// other string is hashed to an id deterministically). On `trace`
    /// requests, the id to look up. Absent, scenario traces mint a
    /// fresh id — see the response manifest's `trace_id`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace_id: Option<String>,
    /// The request body, tagged by `type`.
    #[serde(flatten)]
    pub body: RequestBody,
}

/// Machine-readable error payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireError {
    /// Stable error code (`busy`, `overloaded`, `deadline`, `panic`,
    /// `invalid_spec`, `parse`, …).
    pub code: String,
    /// Human-readable message.
    pub message: String,
    /// Suggested client backoff in milliseconds, on `busy` responses.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub retry_after_ms: Option<u64>,
}

/// `skip_serializing_if` helper: keeps `degraded` off the wire in the
/// common (healthy) case.
fn is_false(b: &bool) -> bool {
    !*b
}

/// One response line. Identical requests produce byte-identical
/// `hash` and `result` fields (the cache never changes an answer);
/// the `manifest` additionally carries volatile per-stage timings, so
/// clients comparing responses should compare `result`, not the line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Echo of the request id, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub id: Option<String>,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Content hash of the scenario (scenario requests only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub hash: Option<String>,
    /// The result payload on success.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub result: Option<serde_json::Value>,
    /// The error payload on failure.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<WireError>,
    /// Whether the answer was served from cache while the engine was
    /// in cache-only degraded mode. Omitted (false) when healthy.
    #[serde(default, skip_serializing_if = "is_false")]
    pub degraded: bool,
    /// Run provenance (scenario requests only): spec hash, seed, scale,
    /// engine version, and per-stage wall-time breakdown.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub manifest: Option<RunManifest>,
    /// The request's span tree, embedded when the spec asked for it
    /// (`"trace": true`). The same tree is retained in the flight
    /// recorder under the manifest's `trace_id`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<serde_json::Value>,
}

impl Response {
    /// A success response.
    pub fn success(id: Option<String>, hash: Option<u64>, result: serde_json::Value) -> Self {
        Response {
            id,
            ok: true,
            hash: hash.map(|h| format!("{h:016x}")),
            result: Some(result),
            error: None,
            degraded: false,
            manifest: None,
            trace: None,
        }
    }

    /// Attaches a run manifest to a response (success responses always
    /// carry one; failure responses carry it when the run got far
    /// enough to have provenance — e.g. a deadline records the stage it
    /// died in).
    pub fn with_manifest(mut self, manifest: RunManifest) -> Self {
        self.manifest = Some(manifest);
        self
    }

    /// Marks the response as served under cache-only degraded mode.
    pub fn with_degraded(mut self, degraded: bool) -> Self {
        self.degraded = degraded;
        self
    }

    /// A failure response with a stable code.
    pub fn failure(id: Option<String>, code: &str, message: String) -> Self {
        Response {
            id,
            ok: false,
            hash: None,
            result: None,
            error: Some(WireError {
                code: code.to_string(),
                message,
                retry_after_ms: None,
            }),
            manifest: None,
            degraded: false,
            trace: None,
        }
    }

    /// A failure response for a typed engine error, carrying its
    /// backoff hint when it has one.
    pub fn from_error(id: Option<String>, e: &EngineError) -> Self {
        let mut resp = Response::failure(id, e.code(), e.to_string());
        if let Some(err) = resp.error.as_mut() {
            err.retry_after_ms = e.retry_after_ms();
        }
        resp
    }

    /// Serializes to one NDJSON line (without the trailing newline).
    ///
    /// Serialization of a response built from engine values cannot
    /// fail; if it ever does, the client still receives one well-formed
    /// error line rather than a dropped connection or a panic.
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| {
            concat!(
                r#"{"ok":false,"error":{"code":"internal","#,
                r#""message":"response serialization failed"}}"#
            )
            .to_string()
        })
    }
}

/// Parses one request line. Accepts the tagged [`Request`] envelope or
/// a bare [`ScenarioSpec`]; anything else is a parse error.
pub fn parse_line(line: &str) -> Result<Request, String> {
    match serde_json::from_str::<Request>(line) {
        Ok(req) => Ok(req),
        Err(envelope_err) => match serde_json::from_str::<ScenarioSpec>(line) {
            Ok(spec) => Ok(Request {
                id: None,
                body: RequestBody::Scenario { spec },
            }),
            Err(_) => Err(envelope_err.to_string()),
        },
    }
}

/// Handles one parsed request against a scenario service (a single
/// [`crate::Engine`] or a sharded runtime). Never panics; every failure
/// becomes an error response.
pub fn handle_request(service: &dyn ScenarioService, req: Request) -> Response {
    let Request { id, trace_id, body } = req;
    match body {
        RequestBody::Ping => Response::success(id, None, serde_json::json!("pong")),
        RequestBody::Health => Response::success(id, None, service.health_value()),
        RequestBody::Metrics => match service.metrics_value() {
            Ok(v) => Response::success(id, None, v),
            Err(e) => Response::failure(id, "internal", e),
        },
        RequestBody::Trace { last } => {
            let rec = solarstorm_obs::recorder();
            let traces = match trace_id.as_deref() {
                Some(t) => rec
                    .find(solarstorm_obs::trace::parse_trace_id(t))
                    .into_iter()
                    .collect::<Vec<_>>(),
                None => {
                    let mut all = rec.snapshot();
                    if let Some(n) = last {
                        if all.len() > n {
                            all.drain(..all.len() - n);
                        }
                    }
                    all
                }
            };
            let items: Vec<serde_json::Value> = traces
                .iter()
                .filter_map(|t| serde_json::from_str(&t.to_json()).ok())
                .collect();
            Response::success(
                id,
                None,
                serde_json::json!({
                    "count": items.len(),
                    "dropped": rec.dropped(),
                    "retained_bytes": rec.retained_bytes(),
                    "traces": items,
                }),
            )
        }
        RequestBody::Scenario { spec } => {
            // Every scenario request runs under a trace; whether the
            // finished trace is *retained* is the recorder's decision
            // (sampling, slow/error always-keep, `trace: true` force).
            let client = trace_id
                .as_deref()
                .map(solarstorm_obs::trace::parse_trace_id);
            let th = solarstorm_obs::TraceHandle::begin("request", client);
            let trace_hex = th.trace_id_hex();
            match service.evaluate_full(&spec) {
                Ok(eval) => {
                    let t = std::time::Instant::now();
                    let serialized = serde_json::to_value(&*eval.result);
                    let serialize_ns = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    solarstorm_obs::record_stage("serialize", serialize_ns);
                    solarstorm_obs::trace::record_rel("serialize", serialize_ns, Vec::new());
                    let completed = th.finish(None);
                    let inline = spec
                        .trace
                        .then(|| serde_json::from_str(&completed.to_json()).ok())
                        .flatten();
                    solarstorm_obs::recorder().offer(completed, spec.trace);
                    match serialized {
                        Ok(v) => {
                            let mut manifest = eval.manifest;
                            manifest.push_stage("serialize", serialize_ns);
                            manifest.trace_id = Some(trace_hex);
                            let mut resp = Response::success(id, Some(eval.hash), v)
                                .with_degraded(eval.degraded)
                                .with_manifest(manifest);
                            resp.trace = inline;
                            resp
                        }
                        Err(e) => Response::failure(id, "internal", e.to_string()),
                    }
                }
                Err(report) => {
                    let completed = th.finish(Some(report.error.code().to_string()));
                    let inline = spec
                        .trace
                        .then(|| serde_json::from_str(&completed.to_json()).ok())
                        .flatten();
                    solarstorm_obs::recorder().offer(completed, spec.trace);
                    let mut resp = Response::from_error(id, &report.error);
                    resp.trace = inline;
                    match report.manifest {
                        // Deadline/compute failures keep their provenance —
                        // the manifest says which stage the run died in.
                        Some(mut manifest) => {
                            manifest.trace_id = Some(trace_hex);
                            resp.with_manifest(manifest)
                        }
                        None => resp,
                    }
                }
            }
        }
    }
}

/// Convenience: parse + handle one raw line.
pub fn handle_line(service: &dyn ScenarioService, line: &str) -> Response {
    match parse_line(line) {
        Ok(req) => handle_request(service, req),
        Err(msg) => Response::failure(None, "parse", msg),
    }
}

/// Maps an [`EngineError`] to its wire code — re-exported for frontends
/// that answer without going through [`handle_request`].
pub fn error_response(id: Option<String>, e: &EngineError) -> Response {
    Response::from_error(id, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_and_bare_spec_both_parse() {
        let env = parse_line(r#"{"id":"a","type":"scenario","spec":{}}"#).unwrap();
        assert_eq!(env.id.as_deref(), Some("a"));
        assert!(matches!(env.body, RequestBody::Scenario { .. }));

        let bare = parse_line(r#"{"model":{"kind":"s1"}}"#).unwrap();
        assert!(bare.id.is_none());
        assert!(matches!(bare.body, RequestBody::Scenario { .. }));

        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"type":"bogus"}"#).is_err());
    }

    #[test]
    fn metrics_and_ping_parse() {
        assert_eq!(
            parse_line(r#"{"type":"ping"}"#).unwrap().body,
            RequestBody::Ping
        );
        assert_eq!(
            parse_line(r#"{"type":"metrics"}"#).unwrap().body,
            RequestBody::Metrics
        );
    }

    #[test]
    fn health_requests_parse_and_answer_for_a_single_engine() {
        assert_eq!(
            parse_line(r#"{"type":"health"}"#).unwrap().body,
            RequestBody::Health
        );
        let engine = crate::Engine::new(crate::EngineConfig {
            workers: 1,
            ..Default::default()
        });
        let req = parse_line(r#"{"id":"h1","type":"health"}"#).unwrap();
        let resp = handle_request(&engine, req);
        assert!(resp.ok);
        assert_eq!(resp.id.as_deref(), Some("h1"));
        let result = resp.result.unwrap();
        assert_eq!(result["healthy"], true, "{result}");
        assert_eq!(result["shards"][0]["state"], "healthy", "{result}");
    }

    #[test]
    fn responses_serialize_compactly() {
        let ok = Response::success(Some("q".into()), Some(0xabc), serde_json::json!({"k": 1}));
        let line = ok.to_line();
        assert!(line.contains(r#""ok":true"#), "{line}");
        assert!(line.contains("0000000000000abc"), "{line}");
        assert!(!line.contains("error"), "{line}");

        let err = Response::failure(None, "busy", "queue full".into());
        let line = err.to_line();
        assert!(line.contains(r#""ok":false"#), "{line}");
        assert!(!line.contains("result"), "{line}");
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back, err);
    }

    #[test]
    fn busy_responses_carry_the_retry_hint() {
        let busy = Response::from_error(
            Some("q".into()),
            &EngineError::Busy {
                retry_after_ms: 250,
            },
        );
        let line = busy.to_line();
        assert!(line.contains(r#""retry_after_ms":250"#), "{line}");
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back, busy);
        // Non-backpressure errors never carry the hint.
        let other = Response::from_error(None, &EngineError::ShuttingDown);
        assert!(!other.to_line().contains("retry_after_ms"));
    }

    #[test]
    fn degraded_flag_is_omitted_when_healthy() {
        let healthy = Response::success(None, None, serde_json::json!("pong"));
        assert!(
            !healthy.to_line().contains("degraded"),
            "{}",
            healthy.to_line()
        );
        let degraded = healthy.clone().with_degraded(true);
        let line = degraded.to_line();
        assert!(line.contains(r#""degraded":true"#), "{line}");
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(back.degraded);
    }

    #[test]
    fn trace_requests_parse_with_and_without_filters() {
        let bare = parse_line(r#"{"type":"trace"}"#).unwrap();
        assert_eq!(bare.body, RequestBody::Trace { last: None });
        assert!(bare.trace_id.is_none());

        let filtered = parse_line(r#"{"type":"trace","trace_id":"00ff","last":3}"#).unwrap();
        assert_eq!(filtered.trace_id.as_deref(), Some("00ff"));
        assert_eq!(filtered.body, RequestBody::Trace { last: Some(3) });
    }

    #[test]
    fn traced_scenario_requests_embed_and_retain_their_span_tree() {
        let engine = crate::Engine::new(crate::EngineConfig {
            workers: 1,
            ..Default::default()
        });
        let req = parse_line(
            r#"{"id":"t1","trace_id":"beef","type":"scenario","spec":{"trace":true,"analysis":{"kind":"sleep","ms":1}}}"#,
        )
        .unwrap();
        let resp = handle_request(&engine, req);
        assert!(resp.ok, "{:?}", resp.error);
        let manifest = resp.manifest.expect("scenario responses carry manifests");
        assert_eq!(manifest.trace_id.as_deref(), Some("000000000000beef"));
        let tree = resp.trace.expect("trace: true must embed the span tree");
        assert_eq!(tree["trace_id"], "000000000000beef");
        let names: Vec<&str> = tree["spans"]
            .as_array()
            .unwrap()
            .iter()
            .filter_map(|s| s["name"].as_str())
            .collect();
        for expected in ["request", "engine_eval", "engine_compute", "serialize"] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }

        // The same tree is queryable afterwards by id.
        let lookup = parse_line(r#"{"type":"trace","trace_id":"beef"}"#).unwrap();
        let got = handle_request(&engine, lookup);
        assert!(got.ok);
        let result = got.result.unwrap();
        assert_eq!(result["count"], 1);
        assert_eq!(result["traces"][0]["trace_id"], "000000000000beef");

        // An untraced request answers without an embedded tree.
        let plain =
            parse_line(r#"{"type":"scenario","spec":{"analysis":{"kind":"sleep","ms":1}}}"#)
                .unwrap();
        let resp = handle_request(&engine, plain);
        assert!(resp.ok);
        assert!(resp.trace.is_none());
        assert!(
            resp.manifest.unwrap().trace_id.is_some(),
            "every scenario run is traced and names its trace id"
        );
    }

    #[test]
    fn manifest_field_is_optional_on_the_wire() {
        let plain = Response::success(None, Some(1), serde_json::json!("pong"));
        assert!(!plain.to_line().contains("manifest"), "{}", plain.to_line());

        let mut m = RunManifest::new(&ScenarioSpec::default(), 1);
        m.push_stage("validate", 5);
        let with = plain.clone().with_manifest(m);
        let line = with.to_line();
        assert!(line.contains(r#""spec_hash":"0000000000000001""#), "{line}");
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back, with);
    }
}
