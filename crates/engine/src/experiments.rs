//! Registry-driven experiment dispatch: every entry of
//! `solarstorm_analysis::registry` is invocable through the service.
//!
//! A request names a registry id (`E0`–`E13`, `A1`–`A15`); the dispatch
//! runs on the experiment's `cli` command name, so the registry stays
//! the single source of truth for what exists and this module mirrors
//! the `stormsim` arms as text-rendering functions.

use crate::error::EngineError;
use rand::SeedableRng;
use solarstorm_analysis::countries::{self, FailureState};
use solarstorm_analysis::{
    arctic, as_impact, economics, fig3, fig4, fig5, fig6, fig7, fig8, fig9, headline, maps,
    partition_report, registry, risk, robustness, systems, traffic_report, Datasets,
};
use solarstorm_gic::{LatitudeBandFailure, PhysicsFailure};
use solarstorm_sim::cascade::{self, GridFailureModel};
use solarstorm_sim::isolation::{self, CouplingModel};
use solarstorm_sim::mitigation;
use solarstorm_sim::monte_carlo::{run_outcomes, MonteCarloConfig};
use solarstorm_sim::repair::{self, RepairFleet, RepairStrategy};
use solarstorm_sim::timeline;
use solarstorm_sim::Kernel;
use solarstorm_solar::{Cme, StormClass};
use std::fmt::Write as _;

/// Runs the registered experiment `id` over the shared datasets with
/// the request's Monte Carlo parameters and sweep kernel, returning the
/// rendered report.
pub(crate) fn run_experiment(
    data: &Datasets,
    mc: &MonteCarloConfig,
    kernel: Kernel,
    id: &str,
) -> Result<String, EngineError> {
    let exp = registry::by_id(id).ok_or_else(|| EngineError::UnknownExperiment(id.to_string()))?;
    run_command(data, mc, kernel, exp.cli)
}

/// Renders the report for one `stormsim` command name. The kernel
/// selects how the sweep-shaped experiments (Figs. 6–8) evaluate their
/// grids; experiments without a sweep axis ignore it.
fn run_command(
    data: &Datasets,
    mc: &MonteCarloConfig,
    kernel: Kernel,
    cli: &str,
) -> Result<String, EngineError> {
    let mut out = String::new();
    match cli {
        "help" | "index" => out.push_str(&registry::render_index()),
        "map" => {
            let _ = writeln!(out, "{}", maps::fig1_infrastructure_map(data, 110, 32));
            let _ = writeln!(out, "{}", maps::fig2_datacenter_map(110, 32));
        }
        "fig3" => out.push_str(&fig3::reproduce(data).to_csv()),
        "fig4a" => out.push_str(&fig4::reproduce_a(data).to_csv()),
        "fig4b" => out.push_str(&fig4::reproduce_b(data).to_csv()),
        "fig5" => out.push_str(&fig5::reproduce(data).to_csv()),
        "fig6" => out.push_str(
            &fig6::reproduce_panel_with(data, mc.spacing_km, mc.trials, mc.seed, kernel)?.to_csv(),
        ),
        "fig7" => out.push_str(
            &fig7::reproduce_panel_with(data, mc.spacing_km, mc.trials, mc.seed, kernel)?.to_csv(),
        ),
        "fig8" => {
            let pts = fig8::reproduce_points_with(data, mc.trials, mc.seed, kernel)?;
            out.push_str(&fig8::to_figure(&pts).to_csv());
        }
        "fig9a" => out.push_str(&fig9::reproduce_a(data).to_csv()),
        "fig9b" => out.push_str(&fig9::reproduce_b(data).to_csv()),
        "stats" => out.push_str(&headline::render_table(&headline::reproduce(data))),
        "countries" => {
            for state in [FailureState::S2, FailureState::S1] {
                let reports = countries::reproduce(data, state, mc.trials.max(20), mc.seed)?;
                let _ = writeln!(out, "{}", countries::render_table(state, &reports));
            }
        }
        "systems" => out.push_str(&systems::render_report(data)),
        "mitigate" => {
            let net = &data.submarine;
            let _ = writeln!(
                out,
                "{:<10} {:>16} {:>16} {:>12} {:>14}",
                "class", "powered fail%", "shutdown fail%", "saved pts", "lead time h"
            );
            for class in StormClass::ALL {
                let r = mitigation::shutdown_ablation(net, class, mc)?;
                let cme = Cme::typical(class);
                let _ = writeln!(
                    out,
                    "{:<10} {:>16.1} {:>16.1} {:>12.1} {:>14.1}",
                    format!("{class:?}"),
                    r.powered.mean_cables_failed_pct,
                    r.shutdown.mean_cables_failed_pct,
                    r.cables_saved_pct,
                    cme.lead_time_hours(1.0),
                );
            }
        }
        "cascade" => {
            let net = &data.submarine;
            for (label, grid) in [
                ("moderate", GridFailureModel::moderate()),
                ("severe", GridFailureModel::severe()),
            ] {
                let s = cascade::run_coupled(net, &LatitudeBandFailure::s2(), &grid, mc)?;
                let _ = writeln!(
                    out,
                    "{label}: cables {:.1}% -> {:.1}% with grid coupling; stations dark {:.1}%",
                    s.mean_cables_failed_repeaters_pct,
                    s.mean_cables_failed_coupled_pct,
                    s.mean_stations_dark_pct
                );
            }
        }
        "repair" => {
            let net = &data.submarine;
            let model = PhysicsFailure::calibrated(StormClass::Extreme);
            let outcome = &run_outcomes(net, &model, mc)?[0];
            let _ = writeln!(
                out,
                "Carrington-class impact: {} of {} cables down. Fleet: {} ships.",
                outcome.dead.iter().filter(|d| **d).count(),
                net.cable_count(),
                RepairFleet::default().ships
            );
            for strategy in RepairStrategy::ALL {
                let r = repair::simulate_repairs(
                    net,
                    &outcome.dead,
                    &RepairFleet::default(),
                    strategy,
                )?;
                let _ = writeln!(
                    out,
                    "{:<22} 50% cables {:>6.0} d; 95% nodes {:>6.0} d; complete {:>6.0} d",
                    r.strategy.label(),
                    r.days_to_50pct_cables,
                    r.days_to_95pct_nodes,
                    r.total_days
                );
            }
        }
        "partitions" => {
            for state in [FailureState::S2, FailureState::S1] {
                let report = partition_report::reproduce(data, &state.model(), mc, 3)?;
                let _ = writeln!(out, "{}", partition_report::render_table(&report));
            }
        }
        "traffic" => {
            for state in [FailureState::S2, FailureState::S1] {
                let report = traffic_report::reproduce(data, &state.model(), mc)?;
                let _ = writeln!(out, "{}", traffic_report::render_table(&report));
            }
        }
        "satellite" => {
            let _ = writeln!(
                out,
                "{:<10} {:>12} {:>12} {:>12}  service lost at",
                "class", "total lost", "electronics", "decay"
            );
            for class in StormClass::ALL {
                let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(mc.seed);
                let impact = solarstorm_sat::storm_impact(
                    &solarstorm_sat::Constellation::starlink_like(),
                    &solarstorm_sat::DragModel::calibrated(),
                    &solarstorm_sat::ServiceModel::default(),
                    class,
                    &mut rng,
                )?;
                let lost: Vec<String> = impact
                    .service_by_latitude
                    .iter()
                    .filter(|(_, ok)| !ok)
                    .map(|(lat, _)| format!("{lat:.0}°"))
                    .collect();
                let _ = writeln!(
                    out,
                    "{:<10} {:>11.1}% {:>11.1}% {:>11.1}%  {}",
                    format!("{class:?}"),
                    100.0 * impact.total_lost,
                    100.0 * impact.electronics_lost,
                    100.0 * impact.decay_lost,
                    if lost.is_empty() {
                        "none".to_string()
                    } else {
                        lost.join(" ")
                    }
                );
            }
        }
        "asimpact" => {
            for state in [FailureState::S2, FailureState::S1] {
                let report = as_impact::reproduce(data, &state.model(), mc)?;
                let _ = writeln!(out, "{}", as_impact::render_table(&report));
            }
        }
        "risk" => {
            let risks = risk::decade_risks(2026.0, 6, 2_000, mc.seed)?;
            out.push_str(&risk::render_table(&risks));
        }
        "isolate" => {
            for state in [FailureState::S2, FailureState::S1] {
                let r = isolation::isolation_ablation(
                    &data.submarine,
                    &state.model(),
                    &CouplingModel::default(),
                    mc,
                )?;
                let _ = writeln!(
                    out,
                    "{}: isolated {:.1}% failed | without isolation {:.1}% failed | {:.1} cascades/trial",
                    state.label(),
                    r.isolated_cables_failed_pct,
                    r.unisolated_cables_failed_pct,
                    r.mean_cascades
                );
            }
        }
        "economics" => {
            for state in [FailureState::S2, FailureState::S1] {
                let e = economics::reproduce(data, &state.model(), mc)?;
                let _ = writeln!(out, "{}", economics::render_table(&e));
            }
        }
        "timeline" => {
            for class in [
                StormClass::Moderate,
                StormClass::Severe,
                StormClass::Extreme,
            ] {
                let tl = timeline::storm_timeline(
                    &data.submarine,
                    class,
                    mc.spacing_km,
                    mc.trials,
                    mc.seed,
                )?;
                let _ = writeln!(out, "\n{class:?} storm: hour | Dst (nT) | cables failed %");
                for p in tl.iter().step_by(6) {
                    let _ = writeln!(
                        out,
                        "  {:>6.1} | {:>8.0} | {:>6.1}",
                        p.hour, p.dst_nt, p.cables_failed_pct
                    );
                }
            }
        }
        "arctic" => out.push_str(&arctic::render_table(&arctic::reproduce()?)),
        "robustness" => {
            for state in [FailureState::S2, FailureState::S1] {
                let rows =
                    robustness::reproduce(data, &state.model(), mc, &robustness::paper_pairs())?;
                let _ = writeln!(
                    out,
                    "{}:\n{}",
                    state.label(),
                    robustness::render_table(&rows)
                );
            }
        }
        other => {
            return Err(EngineError::UnknownExperiment(format!(
                "registry command {other} is not servable"
            )))
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registry_entry_dispatches() {
        // Every registered experiment's cli command must have a dispatch
        // arm; exercised here with the cheapest entries and statically
        // (by name) for the rest via the registry-consistency test in
        // the CLI crate.
        let data = Datasets::small_cached();
        let mc = MonteCarloConfig {
            trials: 2,
            ..Default::default()
        };
        let text = run_experiment(data, &mc, Kernel::default(), "E13").unwrap();
        assert!(text.contains("paper"), "headline table: {text}");
        let csv = run_experiment(data, &mc, Kernel::default(), "E1").unwrap();
        assert!(csv.lines().count() > 2, "fig3 csv: {csv}");
    }

    #[test]
    fn unknown_id_is_reported() {
        let data = Datasets::small_cached();
        let mc = MonteCarloConfig::default();
        assert_eq!(
            run_experiment(data, &mc, Kernel::default(), "Z99")
                .unwrap_err()
                .code(),
            "unknown_experiment"
        );
    }

    #[test]
    fn sweep_experiments_run_under_both_kernels() {
        let data = Datasets::small_cached();
        let mc = MonteCarloConfig {
            trials: 2,
            ..Default::default()
        };
        // E5 is the Fig. 6 sweep; every kernel must render the same
        // figure shape (same header and row count).
        let crn = run_experiment(data, &mc, Kernel::CrnAxis, "E5").unwrap();
        let per_point = run_experiment(data, &mc, Kernel::PerPoint, "E5").unwrap();
        let bitpar = run_experiment(data, &mc, Kernel::Bitpar64, "E5").unwrap();
        assert_eq!(
            crn.lines().count(),
            per_point.lines().count(),
            "kernel changes the sample, not the figure shape"
        );
        assert_eq!(crn.lines().count(), bitpar.lines().count());
        assert_eq!(crn.lines().next(), per_point.lines().next());
        assert_eq!(crn.lines().next(), bitpar.lines().next());
    }
}
