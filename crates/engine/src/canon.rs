//! Canonical JSON serialization and the FNV-1a content hash.
//!
//! Two requests that mean the same thing must cache-address the same
//! entry, regardless of the key order their client happened to emit or
//! whether defaulted fields were spelled out. The canonical form
//! serializes through `serde_json::Value` (so defaults are materialized)
//! and writes objects with keys sorted bytewise; the 64-bit FNV-1a hash
//! of that string is the scenario's content address.

use serde::Serialize;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes bytes with 64-bit FNV-1a.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Writes `v` as canonical JSON: object keys sorted bytewise, no
/// whitespace, arrays in order.
fn write_canonical(v: &serde_json::Value, out: &mut String) {
    match v {
        serde_json::Value::Object(map) => {
            out.push('{');
            let mut keys: Vec<&String> = map.keys().collect();
            keys.sort_unstable();
            for (i, k) in keys.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                // serde_json string serialization cannot fail: a
                // `String` key has no map ordering or NaN hazards.
                #[allow(clippy::expect_used)]
                out.push_str(&serde_json::to_string(k).expect("string serializes"));
                out.push(':');
                write_canonical(&map[*k], out);
            }
            out.push('}');
        }
        serde_json::Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_canonical(item, out);
            }
            out.push(']');
        }
        // Null/bool/number/string serialization cannot fail (serde_json
        // numbers are finite by construction).
        #[allow(clippy::expect_used)]
        scalar => out.push_str(&serde_json::to_string(scalar).expect("scalar serializes")),
    }
}

/// Canonical JSON serialization of any serde value.
pub fn canonical_string<T: Serialize>(t: &T) -> Result<String, serde_json::Error> {
    let v = serde_json::to_value(t)?;
    let mut out = String::with_capacity(128);
    write_canonical(&v, &mut out);
    Ok(out)
}

/// Canonical serialization plus its FNV-1a content hash.
pub fn content_hash<T: Serialize>(t: &T) -> Result<(String, u64), serde_json::Error> {
    let canon = canonical_string(t)?;
    let hash = fnv1a64(canon.as_bytes());
    Ok((canon, hash))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    #[test]
    fn fnv_test_vectors() {
        // Standard FNV-1a 64-bit vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn key_order_does_not_change_the_hash() {
        let a: serde_json::Value =
            serde_json::from_str(r#"{"x": 1, "y": [true, {"b": 2, "a": 3}]}"#).unwrap();
        let b: serde_json::Value =
            serde_json::from_str(r#"{"y": [true, {"a": 3, "b": 2}], "x": 1}"#).unwrap();
        assert_eq!(canonical_string(&a).unwrap(), canonical_string(&b).unwrap());
    }

    #[test]
    fn omitted_defaults_hash_like_explicit_defaults() {
        // `kernel` is omitted in both: unset it stays off the wire (the
        // engine resolves it per analysis), so spelling it out would be
        // a different — explicitly pinned — scenario.
        let implicit: ScenarioSpec = serde_json::from_str("{}").unwrap();
        let explicit: ScenarioSpec = serde_json::from_str(
            r#"{"scale":"test","network":"submarine","model":{"kind":"s2"},
                "mc":{"spacing_km":150.0,"trials":10,"seed":42,"max_threads":8},
                "analysis":{"kind":"stats"}}"#,
        )
        .unwrap();
        assert_eq!(
            content_hash(&implicit).unwrap(),
            content_hash(&explicit).unwrap()
        );
    }

    #[test]
    fn kernel_variants_address_different_cache_entries() {
        // Otherwise-identical specs under different kernels draw
        // different RNG streams, so they must hash to different content
        // addresses — and all differ from the unset-kernel spec, which
        // keeps its legacy canonical form.
        let unset: ScenarioSpec = serde_json::from_str("{}").unwrap();
        let crn: ScenarioSpec = serde_json::from_str(r#"{"kernel":"crn_axis"}"#).unwrap();
        let per_point: ScenarioSpec = serde_json::from_str(r#"{"kernel":"per_point"}"#).unwrap();
        let bitpar: ScenarioSpec = serde_json::from_str(r#"{"kernel":"bitpar64"}"#).unwrap();
        let (canon_a, hash_a) = content_hash(&crn).unwrap();
        let (canon_b, hash_b) = content_hash(&per_point).unwrap();
        let (canon_c, hash_c) = content_hash(&bitpar).unwrap();
        let (canon_u, hash_u) = content_hash(&unset).unwrap();
        assert_ne!(hash_a, hash_b);
        assert_ne!(hash_a, hash_c);
        assert_ne!(hash_b, hash_c);
        assert!(![hash_a, hash_b, hash_c].contains(&hash_u));
        assert!(canon_a.contains(r#""kernel":"crn_axis""#), "{canon_a}");
        assert!(canon_b.contains(r#""kernel":"per_point""#), "{canon_b}");
        assert!(canon_c.contains(r#""kernel":"bitpar64""#), "{canon_c}");
        assert!(!canon_u.contains("kernel"), "{canon_u}");
    }

    #[test]
    fn unset_deadline_keeps_legacy_hashes_stable() {
        // `deadline_ms` is skipped when unset, so specs from before the
        // field existed keep their canonical form and content address.
        let spec: ScenarioSpec = serde_json::from_str("{}").unwrap();
        let (canon, _) = content_hash(&spec).unwrap();
        assert!(!canon.contains("deadline_ms"), "{canon}");
    }

    #[test]
    fn different_specs_hash_differently() {
        let a: ScenarioSpec = serde_json::from_str("{}").unwrap();
        let b: ScenarioSpec = serde_json::from_str(r#"{"mc":{"seed":43}}"#).unwrap();
        assert_ne!(content_hash(&a).unwrap().1, content_hash(&b).unwrap().1);
    }
}
