//! The engine's error type, shared across every service layer.

use std::fmt;

/// Errors produced by the scenario-evaluation service.
///
/// The type is `Clone` because single-flight followers receive the same
/// error instance the leading computation produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The request parsed but a value is out of range or inconsistent.
    InvalidSpec(String),
    /// The requested experiment id is not in the registry.
    UnknownExperiment(String),
    /// The work queue is full; the caller should back off and retry.
    Busy,
    /// The engine is draining and accepts no new work.
    ShuttingDown,
    /// The computation itself failed.
    Compute(String),
}

impl EngineError {
    /// Stable machine-readable code used by the NDJSON wire protocol.
    pub fn code(&self) -> &'static str {
        match self {
            EngineError::InvalidSpec(_) => "invalid_spec",
            EngineError::UnknownExperiment(_) => "unknown_experiment",
            EngineError::Busy => "busy",
            EngineError::ShuttingDown => "shutting_down",
            EngineError::Compute(_) => "compute",
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidSpec(m) => write!(f, "invalid scenario spec: {m}"),
            EngineError::UnknownExperiment(id) => {
                write!(f, "unknown experiment id {id} (see `stormsim index`)")
            }
            EngineError::Busy => write!(f, "engine queue full, retry later"),
            EngineError::ShuttingDown => write!(f, "engine is shutting down"),
            EngineError::Compute(m) => write!(f, "scenario computation failed: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<solarstorm_sim::SimError> for EngineError {
    fn from(e: solarstorm_sim::SimError) -> Self {
        match e {
            solarstorm_sim::SimError::InvalidConfig { .. } => {
                EngineError::InvalidSpec(e.to_string())
            }
            other => EngineError::Compute(other.to_string()),
        }
    }
}

impl From<solarstorm_gic::GicError> for EngineError {
    fn from(e: solarstorm_gic::GicError) -> Self {
        EngineError::InvalidSpec(e.to_string())
    }
}

impl From<solarstorm_solar::SolarError> for EngineError {
    fn from(e: solarstorm_solar::SolarError) -> Self {
        EngineError::Compute(e.to_string())
    }
}

impl From<solarstorm_data::DataError> for EngineError {
    fn from(e: solarstorm_data::DataError) -> Self {
        EngineError::Compute(e.to_string())
    }
}

impl From<solarstorm_sat::SatError> for EngineError {
    fn from(e: solarstorm_sat::SatError) -> Self {
        EngineError::Compute(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(EngineError::Busy.code(), "busy");
        assert_eq!(EngineError::ShuttingDown.code(), "shutting_down");
        assert_eq!(EngineError::InvalidSpec("x".into()).code(), "invalid_spec");
        assert_eq!(
            EngineError::UnknownExperiment("Z9".into()).code(),
            "unknown_experiment"
        );
        assert_eq!(EngineError::Compute("x".into()).code(), "compute");
    }

    #[test]
    fn sim_invalid_config_maps_to_invalid_spec() {
        let e: EngineError = solarstorm_sim::SimError::InvalidConfig {
            name: "trials",
            message: "must be > 0".into(),
        }
        .into();
        assert_eq!(e.code(), "invalid_spec");
    }
}
