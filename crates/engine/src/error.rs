//! The engine's error type, shared across every service layer.

use std::fmt;

/// Errors produced by the scenario-evaluation service.
///
/// The type is `Clone` because single-flight followers receive the same
/// error instance the leading computation produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The request parsed but a value is out of range or inconsistent.
    InvalidSpec(String),
    /// The requested experiment id is not in the registry.
    UnknownExperiment(String),
    /// The work queue is full (or the engine is in cache-only degraded
    /// mode); the caller should back off and retry after the hinted
    /// delay.
    Busy {
        /// Suggested client backoff, milliseconds, scaled to the
        /// current queue depth.
        retry_after_ms: u64,
    },
    /// The server is at its connection cap or could not spawn a
    /// handler thread; the caller should reconnect later.
    Overloaded,
    /// The engine is draining and accepts no new work.
    ShuttingDown,
    /// The request's deadline expired before the result was ready; any
    /// partial work was discarded (never cached).
    DeadlineExceeded {
        /// Pipeline stage where the expired deadline was observed
        /// (`queue_wait`, `compute`, `dedup_wait`).
        stage: &'static str,
    },
    /// A worker panicked while evaluating the scenario. The worker
    /// survived (the panic was caught at the job boundary) and nothing
    /// was cached.
    Panicked {
        /// The panic payload, when it carried a message.
        message: String,
    },
    /// The computation itself failed.
    Compute(String),
}

impl EngineError {
    /// Stable machine-readable code used by the NDJSON wire protocol.
    pub fn code(&self) -> &'static str {
        match self {
            EngineError::InvalidSpec(_) => "invalid_spec",
            EngineError::UnknownExperiment(_) => "unknown_experiment",
            EngineError::Busy { .. } => "busy",
            EngineError::Overloaded => "overloaded",
            EngineError::ShuttingDown => "shutting_down",
            EngineError::DeadlineExceeded { .. } => "deadline",
            EngineError::Panicked { .. } => "panic",
            EngineError::Compute(_) => "compute",
        }
    }

    /// The client backoff hint carried by backpressure errors, if any.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            EngineError::Busy { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidSpec(m) => write!(f, "invalid scenario spec: {m}"),
            EngineError::UnknownExperiment(id) => {
                write!(f, "unknown experiment id {id} (see `stormsim index`)")
            }
            EngineError::Busy { retry_after_ms } => {
                write!(f, "engine queue full, retry in {retry_after_ms} ms")
            }
            EngineError::Overloaded => {
                write!(f, "server at its connection limit, reconnect later")
            }
            EngineError::ShuttingDown => write!(f, "engine is shutting down"),
            EngineError::DeadlineExceeded { stage } => {
                write!(
                    f,
                    "deadline exceeded during {stage}; partial work discarded"
                )
            }
            EngineError::Panicked { message } => {
                write!(f, "worker panicked evaluating the scenario: {message}")
            }
            EngineError::Compute(m) => write!(f, "scenario computation failed: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<solarstorm_sim::SimError> for EngineError {
    fn from(e: solarstorm_sim::SimError) -> Self {
        match e {
            solarstorm_sim::SimError::InvalidConfig { .. } => {
                EngineError::InvalidSpec(e.to_string())
            }
            solarstorm_sim::SimError::Cancelled => {
                EngineError::DeadlineExceeded { stage: "compute" }
            }
            other => EngineError::Compute(other.to_string()),
        }
    }
}

impl From<solarstorm_gic::GicError> for EngineError {
    fn from(e: solarstorm_gic::GicError) -> Self {
        EngineError::InvalidSpec(e.to_string())
    }
}

impl From<solarstorm_solar::SolarError> for EngineError {
    fn from(e: solarstorm_solar::SolarError) -> Self {
        EngineError::Compute(e.to_string())
    }
}

impl From<solarstorm_data::DataError> for EngineError {
    fn from(e: solarstorm_data::DataError) -> Self {
        EngineError::Compute(e.to_string())
    }
}

impl From<solarstorm_sat::SatError> for EngineError {
    fn from(e: solarstorm_sat::SatError) -> Self {
        EngineError::Compute(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(
            EngineError::Busy {
                retry_after_ms: 100
            }
            .code(),
            "busy"
        );
        assert_eq!(EngineError::Overloaded.code(), "overloaded");
        assert_eq!(EngineError::ShuttingDown.code(), "shutting_down");
        assert_eq!(EngineError::InvalidSpec("x".into()).code(), "invalid_spec");
        assert_eq!(
            EngineError::UnknownExperiment("Z9".into()).code(),
            "unknown_experiment"
        );
        assert_eq!(
            EngineError::DeadlineExceeded { stage: "compute" }.code(),
            "deadline"
        );
        assert_eq!(
            EngineError::Panicked {
                message: "x".into()
            }
            .code(),
            "panic"
        );
        assert_eq!(EngineError::Compute("x".into()).code(), "compute");
    }

    #[test]
    fn only_busy_carries_a_retry_hint() {
        assert_eq!(
            EngineError::Busy {
                retry_after_ms: 250
            }
            .retry_after_ms(),
            Some(250)
        );
        assert_eq!(EngineError::Overloaded.retry_after_ms(), None);
        assert_eq!(EngineError::ShuttingDown.retry_after_ms(), None);
    }

    #[test]
    fn sim_cancellation_maps_to_deadline() {
        let e: EngineError = solarstorm_sim::SimError::Cancelled.into();
        assert_eq!(e.code(), "deadline");
        assert_eq!(e, EngineError::DeadlineExceeded { stage: "compute" });
    }

    #[test]
    fn sim_invalid_config_maps_to_invalid_spec() {
        let e: EngineError = solarstorm_sim::SimError::InvalidConfig {
            name: "trials",
            message: "must be > 0".into(),
        }
        .into();
        assert_eq!(e.code(), "invalid_spec");
    }
}
