//! Single-flight deduplication: identical concurrent requests share one
//! computation.
//!
//! The first caller for a canonical scenario key becomes the *leader*
//! and enqueues the job; every later caller arriving before completion
//! becomes a *follower* and blocks on the same [`Flight`]. When a worker
//! completes the job it publishes the shared result and wakes everyone.

use crate::error::EngineError;
use crate::spec::ScenarioResult;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;

/// What a completed computation publishes to everyone waiting on it:
/// the shared result plus where the leader's wall time went, so every
/// follower's [`crate::RunManifest`] can report the true cost of the
/// computation it shared.
#[derive(Debug, Clone)]
pub(crate) struct FlightOutput {
    pub result: Arc<ScenarioResult>,
    /// Time the job sat in the bounded queue before a worker picked it up.
    pub queue_wait_ns: u64,
    /// Time the worker spent actually evaluating the scenario.
    pub compute_ns: u64,
    /// Trace id of the leader's request (0 when the leader was
    /// untraced). Followers record it on the synthetic compute span
    /// they inherit, so traces cross single-flight joins.
    pub leader_trace: u64,
}

/// The shared completion slot one in-flight computation fills.
pub(crate) struct Flight {
    slot: Mutex<Option<Result<FlightOutput, EngineError>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Blocks until the computation completes and returns its output.
    pub fn wait(&self) -> Result<FlightOutput, EngineError> {
        let mut g = self.slot.lock();
        loop {
            if let Some(r) = g.as_ref() {
                return r.clone();
            }
            self.cv.wait(&mut g);
        }
    }

    /// Like [`Flight::wait`], but gives up once `cancel` fires. Only
    /// this caller's wait is abandoned — the shared computation keeps
    /// running for everyone else on the flight.
    pub fn wait_with_cancel(
        &self,
        cancel: &solarstorm_sim::cancel::CancelToken,
    ) -> Result<FlightOutput, EngineError> {
        let mut g = self.slot.lock();
        loop {
            if let Some(r) = g.as_ref() {
                return r.clone();
            }
            if cancel.is_cancelled() {
                return Err(EngineError::DeadlineExceeded {
                    stage: "dedup_wait",
                });
            }
            // Bounded wait: the token has no waker, so poll it at a
            // resolution far below any plausible deadline.
            let _ = self
                .cv
                .wait_for(&mut g, std::time::Duration::from_millis(5));
        }
    }

    fn fill(&self, r: Result<FlightOutput, EngineError>) {
        let mut g = self.slot.lock();
        *g = Some(r);
        self.cv.notify_all();
    }
}

/// Whether a caller leads or joins an in-flight computation.
pub(crate) enum Role {
    /// This caller must enqueue the job and eventually complete it.
    Lead(Arc<Flight>),
    /// Another caller already owns the computation; wait on its flight.
    Join(Arc<Flight>),
}

/// The table of in-flight computations, keyed by canonical scenario.
#[derive(Default)]
pub(crate) struct FlightTable {
    map: Mutex<HashMap<String, Arc<Flight>>>,
}

impl FlightTable {
    /// Joins the flight for `key`, creating it (as leader) when absent.
    pub fn join_or_lead(&self, key: &str) -> Role {
        let mut g = self.map.lock();
        if let Some(f) = g.get(key) {
            Role::Join(Arc::clone(f))
        } else {
            let f = Arc::new(Flight::new());
            g.insert(key.to_string(), Arc::clone(&f));
            Role::Lead(f)
        }
    }

    /// Publishes the result for `key` and removes it from the table.
    /// Followers blocked in [`Flight::wait`] observe the result; callers
    /// arriving after this point start a fresh flight (and will normally
    /// hit the cache instead).
    pub fn complete(&self, key: &str, result: Result<FlightOutput, EngineError>) {
        let flight = self.map.lock().remove(key);
        if let Some(f) = flight {
            f.fill(result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn followers_receive_the_leaders_result() {
        let table = Arc::new(FlightTable::default());
        let Role::Lead(lead) = table.join_or_lead("k") else {
            panic!("first caller must lead");
        };
        let mut joins = Vec::new();
        for _ in 0..4 {
            let t = Arc::clone(&table);
            joins.push(thread::spawn(move || match t.join_or_lead("k") {
                Role::Join(f) => f.wait(),
                Role::Lead(_) => panic!("must join the existing flight"),
            }));
        }
        // Give followers a moment to block, then complete.
        thread::sleep(std::time::Duration::from_millis(20));
        table.complete(
            "k",
            Ok(FlightOutput {
                result: Arc::new(ScenarioResult::Slept { ms: 7 }),
                queue_wait_ns: 11,
                compute_ns: 22,
                leader_trace: 0,
            }),
        );
        for j in joins {
            let out = j.join().unwrap().unwrap();
            assert_eq!(*out.result, ScenarioResult::Slept { ms: 7 });
            assert_eq!(out.queue_wait_ns, 11);
            assert_eq!(out.compute_ns, 22);
        }
        drop(lead);
        // After completion the key is free again.
        assert!(matches!(table.join_or_lead("k"), Role::Lead(_)));
    }

    #[test]
    fn errors_propagate_to_followers() {
        let table = FlightTable::default();
        let Role::Lead(_) = table.join_or_lead("k") else {
            panic!("lead");
        };
        let Role::Join(f) = table.join_or_lead("k") else {
            panic!("join");
        };
        table.complete("k", Err(EngineError::Busy { retry_after_ms: 7 }));
        assert_eq!(
            f.wait().unwrap_err(),
            EngineError::Busy { retry_after_ms: 7 }
        );
    }

    #[test]
    fn cancelled_follower_abandons_the_wait_alone() {
        use solarstorm_sim::cancel::CancelToken;
        let table = FlightTable::default();
        let Role::Lead(_) = table.join_or_lead("k") else {
            panic!("lead");
        };
        let Role::Join(f) = table.join_or_lead("k") else {
            panic!("join");
        };
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            f.wait_with_cancel(&token).unwrap_err(),
            EngineError::DeadlineExceeded {
                stage: "dedup_wait"
            }
        );
        // The flight itself is untouched: a later completion still
        // reaches followers that kept waiting.
        table.complete(
            "k",
            Ok(FlightOutput {
                result: Arc::new(ScenarioResult::Slept { ms: 1 }),
                queue_wait_ns: 1,
                compute_ns: 1,
                leader_trace: 0,
            }),
        );
        assert!(f.wait_with_cancel(&CancelToken::none()).is_ok());
    }
}
