//! `solarstorm-engine` — a concurrent scenario-evaluation service over
//! the solarstorm toolkit.
//!
//! The library crates answer one question at a time; this crate turns
//! them into a long-running service that answers *many* what-if queries
//! over shared, pre-built datasets — the shape of workload an operator
//! tool (per-cable scenario queries, resilience dashboards) produces:
//!
//! * **[`ScenarioSpec`]** — a serde request value selecting datasets, a
//!   failure model, Monte Carlo parameters, and an analysis; registry
//!   experiments (`E0`–`A15`) are invocable by id.
//! * **Content-addressed caching** — the FNV-1a hash of the spec's
//!   canonical (key-sorted) JSON keys a bounded LRU result cache, so a
//!   repeated query costs a hash lookup, not a simulation.
//! * **Single-flight dedup** — identical concurrent requests block on
//!   one computation instead of repeating it.
//! * **Bounded worker pool** — a fixed pool fed by a bounded crossbeam
//!   channel; a full queue rejects with [`EngineError::Busy`] instead of
//!   growing without bound, and [`Engine::shutdown`] drains in-flight
//!   work before stopping.
//! * **[`EngineMetrics`]** — served/rejected counts, cache hits/misses,
//!   dedup joins, queue depth, a latency histogram with p50/p99, and
//!   per-stage timing aggregates; also rendered as Prometheus text by
//!   [`MetricsServer`] (`stormsim serve --metrics-addr`).
//! * **[`RunManifest`]** — provenance attached to every scenario
//!   response: spec content hash, RNG seed, dataset scale, engine
//!   version, and a per-stage wall-time breakdown.
//!
//! # Fault tolerance
//!
//! The service is built to keep answering when individual requests go
//! wrong:
//!
//! * **Deadlines** — [`ScenarioSpec::deadline_ms`] (or the engine-wide
//!   [`EngineConfig::default_deadline_ms`]) bounds a request from
//!   admission, queue wait included. Expiry cancels the running
//!   simulation cooperatively, answers with the typed `deadline` error,
//!   records the stage it died in on the [`RunManifest`], and caches
//!   nothing.
//! * **Panic isolation** — a panic inside one evaluation is caught at
//!   the worker boundary and becomes the typed `panic` error for that
//!   request alone; the worker survives, the panic is counted in
//!   [`EngineMetrics::panics`], and the simulation thread pool respawns
//!   any worker a panic kills.
//! * **Load shedding** — a full queue answers [`EngineError::Busy`]
//!   with a `retry_after_ms` backoff hint; sustained saturation flips
//!   the engine into cache-only degraded mode (cache hits still served,
//!   marked `degraded`; misses shed) until the queue drains.
//! * **Chaos harness** — the `chaos` feature compiles in deterministic
//!   fault injection at named points (worker, compute entry, sim pool,
//!   server write path) driving an integration suite that asserts the
//!   service keeps answering under every fault.
//!
//! Frontends: [`Server`] speaks newline-delimited JSON over
//! `std::net::TcpListener` (`stormsim serve`), and the same
//! [`proto`] handlers back `stormsim batch` for offline NDJSON bulk
//! evaluation.
//!
//! # Example
//!
//! ```
//! use solarstorm_engine::{AnalysisRequest, Engine, EngineConfig, ScenarioSpec};
//!
//! let engine = Engine::new(EngineConfig { workers: 2, ..Default::default() });
//! // A synthetic workload needs no datasets, so this doc test is cheap;
//! // real requests select networks, failure models and analyses.
//! let spec = ScenarioSpec {
//!     analysis: AnalysisRequest::Sleep { ms: 1 },
//!     ..Default::default()
//! };
//! let cold = engine.evaluate(&spec).unwrap();
//! let warm = engine.evaluate(&spec).unwrap();
//! assert!(!cold.cached && warm.cached);
//! assert_eq!(engine.metrics().computations, 1);
//! engine.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// The service must degrade into typed errors, never abort: unwrap/expect
// are banned from non-test engine code (narrow `#[allow]`s mark the few
// provably-infallible sites). Unit tests (cfg(test)) assert freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod cache;
pub mod canon;
mod compute;
mod engine;
mod error;
mod experiments;
mod flight;
mod manifest;
mod metrics;
mod metrics_http;
pub mod proto;
mod server;
mod service;
mod spec;

pub use engine::{Engine, EngineConfig, Evaluation, FailureReport, HedgeProbe};
pub use error::EngineError;
pub use manifest::{RunManifest, StageTiming};
pub use metrics::{EngineMetrics, LatencySummary, StageSummary};
pub use metrics_http::MetricsServer;
pub use proto::{Request, RequestBody, Response, WireError};
pub use server::{serve_stream, serve_stream_bounded, Server, ServerConfig};
pub use service::ScenarioService;
pub use spec::{
    AnalysisRequest, FailureSpec, NetworkSel, OutcomeSummary, PrecisionReport, Scale,
    ScenarioResult, ScenarioSpec, SweepPointResult,
};
