//! Minimal HTTP/1.1 endpoint serving metrics in the Prometheus text
//! exposition format, plus the flight recorder's Chrome trace export.
//!
//! Deliberately tiny: three routes, each a fresh snapshot with
//! `Connection: close`, which is all a Prometheus scraper, Perfetto,
//! or `curl` needs:
//!
//! * any path but `/trace` and `/health` — the Prometheus text
//!   exposition from [`crate::ScenarioService::prometheus_text`]
//!   (behind a sharded runtime the text carries per-shard
//!   `shard`-labelled series too);
//! * `/trace` — the retained traces as Chrome trace-event JSON
//!   (`{"traceEvents":[…]}`), loadable directly in Perfetto or
//!   `chrome://tracing`;
//! * `/health` — shard supervision state as JSON from
//!   [`crate::ScenarioService::health_value`] (per-shard health state,
//!   breaker window stats, reroute counts; trivially healthy behind a
//!   single engine).
//!
//! Runs alongside the NDJSON [`crate::Server`] as
//! `stormsim serve --metrics-addr`.

use crate::service::ScenarioService;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// The metrics scrape endpoint.
pub struct MetricsServer {
    listener: TcpListener,
    service: Arc<dyn ScenarioService>,
}

impl MetricsServer {
    /// Binds the scrape endpoint (e.g. `"127.0.0.1:9184"`; port 0 picks
    /// a free port). An `Arc<Engine>` coerces directly.
    pub fn bind(addr: &str, service: Arc<dyn ScenarioService>) -> std::io::Result<MetricsServer> {
        Ok(MetricsServer {
            listener: TcpListener::bind(addr)?,
            service,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves scrapes forever; each connection is handled on its own
    /// short-lived thread so one slow scraper cannot block the next.
    pub fn run(self) -> std::io::Result<()> {
        for conn in self.listener.incoming() {
            match conn {
                Ok(stream) => {
                    let service = Arc::clone(&self.service);
                    let _ = std::thread::Builder::new()
                        .name("storm-metrics".into())
                        .spawn(move || serve_scrape(&service, stream));
                }
                Err(e) => eprintln!("stormsim: metrics accept error: {e}"),
            }
        }
        Ok(())
    }
}

/// Answers one scrape: read the request line, drain the rest of the
/// head, dispatch on the path, write one response.
fn serve_scrape(service: &Arc<dyn ScenarioService>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => continue,
        }
    }
    // `GET /path HTTP/1.1` → `/path` (ignoring any query string).
    let path = request_line
        .split_whitespace()
        .nth(1)
        .unwrap_or("/")
        .split('?')
        .next()
        .unwrap_or("/");
    let (content_type, body) = if path == "/trace" || path.starts_with("/trace/") {
        (
            "application/json; charset=utf-8",
            solarstorm_obs::chrome_trace_json(&solarstorm_obs::recorder().snapshot()),
        )
    } else if path == "/health" {
        (
            "application/json; charset=utf-8",
            service.health_value().to_string(),
        )
    } else {
        (
            "text/plain; version=0.0.4; charset=utf-8",
            service.prometheus_text(),
        )
    };
    let mut stream = stream;
    let _ = write!(
        stream,
        "HTTP/1.1 200 OK\r\n\
         Content-Type: {}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{}",
        content_type,
        body.len(),
        body
    );
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use std::io::Read;

    fn fetch(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn scrape_returns_prometheus_text() {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 1,
            ..Default::default()
        }));
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());

        let raw = fetch(addr, "/metrics");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("# TYPE stormsim_requests_total counter"));
        assert_eq!(
            head.split("Content-Length: ")
                .nth(1)
                .unwrap()
                .split("\r\n")
                .next(),
            Some(body.len().to_string().as_str()),
            "Content-Length matches the body"
        );
        engine.shutdown();
    }

    #[test]
    fn trace_path_returns_chrome_trace_json() {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 1,
            ..Default::default()
        }));
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());

        // Record at least one trace so the export has content.
        let h = solarstorm_obs::TraceHandle::begin("request", Some(0x7e57));
        drop(solarstorm_obs::span!("http_test_stage"));
        solarstorm_obs::recorder().offer(h.finish(None), true);

        let raw = fetch(addr, "/trace");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("application/json"), "{head}");
        let v: serde_json::Value = serde_json::from_str(body).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        assert!(!events.is_empty());
        let begins = events.iter().filter(|e| e["ph"] == "B").count();
        let ends = events.iter().filter(|e| e["ph"] == "E").count();
        assert_eq!(begins, ends, "B/E pairs must match");
        engine.shutdown();
    }

    #[test]
    fn health_path_returns_supervision_json() {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 1,
            ..Default::default()
        }));
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());

        let raw = fetch(addr, "/health");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("application/json"), "{head}");
        let v: serde_json::Value = serde_json::from_str(body).unwrap();
        assert_eq!(v["healthy"], true, "{v}");
        assert_eq!(v["shards"][0]["state"], "healthy", "{v}");
        engine.shutdown();
    }
}
