//! Minimal HTTP/1.1 endpoint serving metrics in the Prometheus text
//! exposition format.
//!
//! Deliberately tiny: every request — whatever its path — gets a fresh
//! snapshot rendered by [`crate::ScenarioService::prometheus_text`]
//! with `Connection: close`, which is all a Prometheus scraper (or
//! `curl`) needs. Runs alongside the NDJSON [`crate::Server`] as
//! `stormsim serve --metrics-addr`; behind a sharded runtime the text
//! carries per-shard `shard`-labelled series too.

use crate::service::ScenarioService;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// The metrics scrape endpoint.
pub struct MetricsServer {
    listener: TcpListener,
    service: Arc<dyn ScenarioService>,
}

impl MetricsServer {
    /// Binds the scrape endpoint (e.g. `"127.0.0.1:9184"`; port 0 picks
    /// a free port). An `Arc<Engine>` coerces directly.
    pub fn bind(addr: &str, service: Arc<dyn ScenarioService>) -> std::io::Result<MetricsServer> {
        Ok(MetricsServer {
            listener: TcpListener::bind(addr)?,
            service,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves scrapes forever; each connection is handled on its own
    /// short-lived thread so one slow scraper cannot block the next.
    pub fn run(self) -> std::io::Result<()> {
        for conn in self.listener.incoming() {
            match conn {
                Ok(stream) => {
                    let service = Arc::clone(&self.service);
                    let _ = std::thread::Builder::new()
                        .name("storm-metrics".into())
                        .spawn(move || serve_scrape(&service.prometheus_text(), stream));
                }
                Err(e) => eprintln!("stormsim: metrics accept error: {e}"),
            }
        }
        Ok(())
    }
}

/// Answers one scrape: drain the request head, write one response.
fn serve_scrape(body: &str, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => continue,
        }
    }
    let mut stream = stream;
    let _ = write!(
        stream,
        "HTTP/1.1 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use std::io::Read;

    fn scrape(addr: SocketAddr) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn scrape_returns_prometheus_text() {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 1,
            ..Default::default()
        }));
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());

        let raw = scrape(addr);
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("# TYPE stormsim_requests_total counter"));
        assert_eq!(
            head.split("Content-Length: ")
                .nth(1)
                .unwrap()
                .split("\r\n")
                .next(),
            Some(body.len().to_string().as_str()),
            "Content-Length matches the body"
        );
        engine.shutdown();
    }
}
