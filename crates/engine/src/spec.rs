//! The request and response value types of the scenario service.
//!
//! A [`ScenarioSpec`] is the unit of work: which dataset bundle, which
//! network, which failure model, the Monte Carlo parameters, and which
//! analysis to run over the outcomes. Every field has a serde default so
//! the minimal NDJSON request is `{}` (test-scale submarine network, S2
//! band model, paper-default Monte Carlo, aggregate statistics).

use serde::{Deserialize, Serialize};
use solarstorm_sim::{
    AdaptiveOutcome, Kernel, MonteCarloConfig, Precision, TrialOutcome, TrialStats,
};
use solarstorm_solar::StormClass;

/// Which dataset bundle a scenario runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum Scale {
    /// Scaled-down datasets: fast, suitable for interactive queries.
    #[default]
    Test,
    /// Paper-scale datasets (470 submarine cables, 200k routers);
    /// expensive to build the first time, shared afterwards.
    Paper,
}

/// Which generated network a scenario runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum NetworkSel {
    /// Global submarine-cable network (§4.1.1).
    #[default]
    Submarine,
    /// US long-haul fiber (§4.1.2).
    Intertubes,
    /// Global ITU land network (§4.1.3).
    Itu,
}

/// Serializable selection of a repeater-failure model.
///
/// Mirrors the `solarstorm-gic` model family: the paper's uniform-`p`
/// model (Figs. 6–7), the S1/S2 latitude-band models (Fig. 8), arbitrary
/// band probabilities, and the physics chain calibrated per storm class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FailureSpec {
    /// Uniform per-repeater failure probability.
    Uniform {
        /// Probability in `[0, 1]`.
        p: f64,
    },
    /// The paper's S1 ("high failure") band model.
    S1,
    /// The paper's S2 ("low failure") band model — the default.
    #[default]
    S2,
    /// Custom `[>60°, 40–60°, <40°]` band probabilities.
    Bands {
        /// Per-band probabilities, highest latitude first.
        probs: [f64; 3],
    },
    /// Physics-chain model calibrated to a storm class.
    Physics {
        /// Storm class driving the geoelectric field.
        class: StormClass,
        /// Model cables as powered off (§5.2 mitigation posture).
        #[serde(default)]
        shutdown: bool,
    },
}

/// Which analysis the engine runs over the selected scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum AnalysisRequest {
    /// Aggregate Monte Carlo statistics (mean/σ of the two paper
    /// metrics) — the default.
    #[default]
    Stats,
    /// Per-trial outcome summaries, in trial order.
    Outcomes,
    /// A registered experiment by registry id (`E0`–`E13`, `A1`–`A15`);
    /// returns the rendered report or figure CSV. The failure-model and
    /// network selections are ignored where the experiment prescribes
    /// its own (e.g. Fig. 8 sweeps S1 and S2 itself).
    Experiment {
        /// Registry id, as listed by `stormsim index`.
        id: String,
    },
    /// Synthetic workload: hold a worker for `ms` milliseconds (capped
    /// at 5000). Exists for load tests and queue/drain diagnostics.
    Sleep {
        /// Milliseconds to sleep.
        ms: u64,
    },
    /// A uniform failure-probability sweep over the given points,
    /// evaluated under the spec's `kernel`. The spec's failure-model
    /// selection is ignored (the sweep prescribes its own uniform
    /// models); the Monte Carlo parameters apply to every point.
    SweepAxis {
        /// Sweep probabilities, each in `[0, 1]`. With the `crn_axis`
        /// kernel a non-decreasing list runs as one common-random-
        /// numbers sweep; anything else falls back to per-point.
        points: Vec<f64>,
    },
}

/// One scenario-evaluation request: the engine's unit of work and the
/// value whose canonical serialization content-addresses the cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(deny_unknown_fields)]
pub struct ScenarioSpec {
    /// Dataset bundle scale.
    #[serde(default)]
    pub scale: Scale,
    /// Which network to evaluate.
    #[serde(default)]
    pub network: NetworkSel,
    /// Failure model.
    #[serde(default)]
    pub model: FailureSpec,
    /// Monte Carlo parameters (spacing, trials, seed, threads).
    #[serde(default)]
    pub mc: MonteCarloConfig,
    /// Requested analysis.
    #[serde(default)]
    pub analysis: AnalysisRequest,
    /// Which Monte Carlo kernel evaluates sweeps and stats: the
    /// bit-parallel block kernel (`bitpar64`), the common-random-numbers
    /// axis kernel (`crn_axis`), or the historical per-point kernel
    /// (`per_point`). The kernels draw different RNG streams, so the
    /// resolved kernel is part of the scenario's cache identity. Unset,
    /// the engine picks per analysis (see
    /// [`ScenarioSpec::effective_kernel`]).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub kernel: Option<Kernel>,
    /// Adaptive-precision Monte Carlo: run trials in 64-trial blocks
    /// until the `ci`-level confidence-interval half-width on percent
    /// nodes unreachable is at most `half_width`, capped at
    /// `max_trials` per point. Applies to `Stats` and `SweepAxis`
    /// analyses under the block kernels (`bitpar64`, `crn_axis`); the
    /// spec's `mc.trials` is ignored for adaptive runs. Unlike
    /// `deadline_ms`, this **is** part of the scenario's cache
    /// identity: adaptive and fixed-budget runs draw different trial
    /// counts and must never share a cache entry.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub precision: Option<Precision>,
    /// Optional per-request deadline, in milliseconds from admission
    /// (queue wait counts against it). A run still going when it
    /// expires is cancelled cooperatively and answered with a
    /// `deadline` error; its partial work is discarded, never cached.
    /// Exception: an adaptive run (`precision` set) that has completed
    /// at least one trial round answers with the statistics and
    /// best-effort precision it achieved instead of failing — the
    /// result says so (`best_effort`) and is never cached.
    /// Unset, the engine-wide default
    /// ([`crate::EngineConfig::default_deadline_ms`]) applies.
    ///
    /// The deadline is *not* part of the scenario's identity: two specs
    /// differing only here share one cache entry and one in-flight
    /// computation (the engine hashes the spec with this field
    /// cleared).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deadline_ms: Option<u64>,
    /// Embed the request's span tree inline in the response (`trace`
    /// field) and force the trace's retention in the flight recorder.
    ///
    /// Like `deadline_ms`, this is *not* part of the scenario's cache
    /// identity: a traced and an untraced request for the same scenario
    /// share one cache entry and one in-flight computation (the engine
    /// hashes the spec with this field cleared).
    #[serde(default, skip_serializing_if = "is_false")]
    pub trace: bool,
}

/// `skip_serializing_if` helper: keeps `trace: false` off the wire so
/// canonical serializations (and spec hashes) are unchanged for
/// untraced requests.
fn is_false(b: &bool) -> bool {
    !*b
}

impl ScenarioSpec {
    /// The kernel this scenario actually runs under. An explicit choice
    /// wins; otherwise the engine picks per analysis: plain `Stats`
    /// defaults to the bit-parallel `bitpar64` kernel (statistically
    /// equivalent, ~an order of magnitude faster), `Outcomes` defaults
    /// to the reference `per_point` stream (per-trial results are the
    /// product, so stay bit-compatible with historical outputs), and
    /// everything else — sweeps and experiments, where cross-point
    /// contrasts matter — defaults to the common-random-numbers
    /// `crn_axis` kernel.
    pub fn effective_kernel(&self) -> Kernel {
        if let Some(kernel) = self.kernel {
            return kernel;
        }
        match self.analysis {
            AnalysisRequest::Stats => Kernel::Bitpar64,
            AnalysisRequest::Outcomes => Kernel::PerPoint,
            _ => Kernel::CrnAxis,
        }
    }
}

/// Per-trial summary returned by [`AnalysisRequest::Outcomes`]: the two
/// paper metrics plus the dead-cable count, without the per-cable mask.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutcomeSummary {
    /// Trial index (deterministic under any thread count).
    pub trial: usize,
    /// Percentage of cables that failed.
    pub cables_failed_pct: f64,
    /// Percentage of nodes left unreachable.
    pub nodes_unreachable_pct: f64,
    /// Number of dead cables.
    pub cables_dead: usize,
}

impl OutcomeSummary {
    /// Summarizes one trial outcome.
    pub fn from_outcome(trial: usize, o: &TrialOutcome) -> Self {
        OutcomeSummary {
            trial,
            cables_failed_pct: o.cables_failed_pct,
            nodes_unreachable_pct: o.nodes_unreachable_pct,
            cables_dead: o.dead.iter().filter(|d| **d).count(),
        }
    }
}

/// Realized precision of one adaptive Monte Carlo estimate, reported
/// next to the statistics it qualifies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionReport {
    /// Requested confidence level.
    pub ci: f64,
    /// Requested half-width on percent nodes unreachable.
    pub target_half_width: f64,
    /// Trials actually drawn.
    pub trials_used: usize,
    /// Realized half-width at the requested confidence level.
    pub achieved_half_width: f64,
    /// Whether the target was met within the trial budget.
    pub met: bool,
    /// Whether the run was cut short by its deadline and reports the
    /// best-effort precision it achieved instead of a `deadline` error.
    pub best_effort: bool,
}

impl PrecisionReport {
    /// Pairs a request with the outcome the stopping rule realized.
    pub fn new(precision: &Precision, outcome: &AdaptiveOutcome) -> Self {
        PrecisionReport {
            ci: precision.ci,
            target_half_width: precision.half_width,
            trials_used: outcome.trials_used,
            achieved_half_width: outcome.achieved_half_width,
            met: outcome.met,
            best_effort: outcome.best_effort,
        }
    }
}

/// The result of evaluating one [`ScenarioSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ScenarioResult {
    /// Aggregate Monte Carlo statistics.
    Stats {
        /// The aggregated batch statistics.
        stats: TrialStats,
        /// Realized adaptive precision; present only when the spec
        /// requested it.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        precision: Option<PrecisionReport>,
    },
    /// Per-trial summaries.
    Outcomes {
        /// One summary per trial, in trial order.
        outcomes: Vec<OutcomeSummary>,
    },
    /// A rendered experiment report or figure CSV.
    Report {
        /// Registry id that produced the report.
        id: String,
        /// Rendered text (table or CSV).
        text: String,
    },
    /// Acknowledgement of a synthetic sleep workload.
    Slept {
        /// Milliseconds slept.
        ms: u64,
    },
    /// A uniform-probability sweep: one aggregated statistics entry per
    /// requested point, in request order.
    Sweep {
        /// `(probability, stats)` per sweep point.
        points: Vec<SweepPointResult>,
    },
}

impl ScenarioResult {
    /// Aggregate adaptive-precision provenance across the result:
    /// total trials drawn, the widest realized half-width, `met` only
    /// when every point met its target, `best_effort` when any point
    /// was cut short. `None` for fixed-budget results.
    pub fn precision_summary(&self) -> Option<PrecisionReport> {
        match self {
            ScenarioResult::Stats { precision, .. } => *precision,
            ScenarioResult::Sweep { points } => {
                let mut reports = points.iter().filter_map(|pt| pt.precision);
                let mut agg = reports.next()?;
                for r in reports {
                    agg.trials_used += r.trials_used;
                    agg.achieved_half_width = agg.achieved_half_width.max(r.achieved_half_width);
                    agg.met &= r.met;
                    agg.best_effort |= r.best_effort;
                }
                Some(agg)
            }
            _ => None,
        }
    }

    /// Whether the result reports deadline-cut best-effort precision.
    /// Best-effort results answer the request that paid for them but
    /// are never cached — a later request deserves the full budget.
    pub fn best_effort(&self) -> bool {
        self.precision_summary().is_some_and(|p| p.best_effort)
    }
}

/// One point of an [`AnalysisRequest::SweepAxis`] response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPointResult {
    /// Uniform per-repeater failure probability at this point.
    pub p: f64,
    /// Aggregated Monte Carlo statistics at this point.
    pub stats: TrialStats,
    /// Realized adaptive precision at this point; present only when
    /// the spec requested it.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub precision: Option<PrecisionReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_is_all_defaults() {
        let spec: ScenarioSpec = serde_json::from_str("{}").unwrap();
        assert_eq!(spec, ScenarioSpec::default());
        assert_eq!(spec.scale, Scale::Test);
        assert_eq!(spec.network, NetworkSel::Submarine);
        assert_eq!(spec.model, FailureSpec::S2);
        assert_eq!(spec.analysis, AnalysisRequest::Stats);
        assert_eq!(spec.mc, MonteCarloConfig::default());
        assert_eq!(spec.kernel, None);
        // Default Stats analysis resolves to the bit-parallel kernel.
        assert_eq!(spec.effective_kernel(), Kernel::Bitpar64);
    }

    #[test]
    fn effective_kernel_resolves_per_analysis() {
        let mut spec = ScenarioSpec::default();
        assert_eq!(spec.effective_kernel(), Kernel::Bitpar64);
        spec.analysis = AnalysisRequest::Outcomes;
        assert_eq!(spec.effective_kernel(), Kernel::PerPoint);
        spec.analysis = AnalysisRequest::SweepAxis {
            points: vec![0.1, 0.5],
        };
        assert_eq!(spec.effective_kernel(), Kernel::CrnAxis);
        // An explicit kernel always wins.
        spec.kernel = Some(Kernel::Bitpar64);
        assert_eq!(spec.effective_kernel(), Kernel::Bitpar64);
        spec.analysis = AnalysisRequest::Stats;
        spec.kernel = Some(Kernel::PerPoint);
        assert_eq!(spec.effective_kernel(), Kernel::PerPoint);
        // An unset kernel stays off the wire.
        let bare = serde_json::to_string(&ScenarioSpec::default()).unwrap();
        assert!(
            !bare.contains("kernel"),
            "an unset kernel must not appear in serialized specs: {bare}"
        );
    }

    #[test]
    fn kernel_and_sweep_axis_parse() {
        let spec: ScenarioSpec = serde_json::from_str(
            r#"{"kernel":"per_point","analysis":{"kind":"sweep_axis","points":[0.01,0.1,1.0]}}"#,
        )
        .unwrap();
        assert_eq!(spec.kernel, Some(Kernel::PerPoint));
        assert_eq!(spec.effective_kernel(), Kernel::PerPoint);
        assert_eq!(
            spec.analysis,
            AnalysisRequest::SweepAxis {
                points: vec![0.01, 0.1, 1.0]
            }
        );
        let back = serde_json::to_string(&spec.kernel).unwrap();
        assert_eq!(back, r#""per_point""#);
        let bitpar: ScenarioSpec = serde_json::from_str(r#"{"kernel":"bitpar64"}"#).unwrap();
        assert_eq!(bitpar.kernel, Some(Kernel::Bitpar64));
    }

    #[test]
    fn partial_mc_override_keeps_other_defaults() {
        let spec: ScenarioSpec =
            serde_json::from_str(r#"{"mc": {"trials": 99}, "model": {"kind": "s1"}}"#).unwrap();
        assert_eq!(spec.mc.trials, 99);
        assert_eq!(spec.mc.seed, MonteCarloConfig::default().seed);
        assert_eq!(spec.model, FailureSpec::S1);
    }

    #[test]
    fn unknown_fields_are_rejected() {
        assert!(serde_json::from_str::<ScenarioSpec>(r#"{"bogus": 1}"#).is_err());
    }

    #[test]
    fn deadline_parses_and_stays_off_the_wire_when_unset() {
        let spec: ScenarioSpec = serde_json::from_str(r#"{"deadline_ms": 250}"#).unwrap();
        assert_eq!(spec.deadline_ms, Some(250));
        let bare = serde_json::to_string(&ScenarioSpec::default()).unwrap();
        assert!(
            !bare.contains("deadline_ms"),
            "an unset deadline must not appear in serialized specs: {bare}"
        );
    }

    #[test]
    fn trace_flag_parses_and_stays_off_the_wire_when_false() {
        let spec: ScenarioSpec = serde_json::from_str(r#"{"trace": true}"#).unwrap();
        assert!(spec.trace);
        let bare = serde_json::to_string(&ScenarioSpec::default()).unwrap();
        assert!(
            !bare.contains("trace"),
            "trace: false must not appear in serialized specs: {bare}"
        );
    }

    #[test]
    fn precision_parses_and_stays_off_the_wire_when_unset() {
        let spec: ScenarioSpec =
            serde_json::from_str(r#"{"precision": {"half_width": 0.5, "max_trials": 65536}}"#)
                .unwrap();
        let precision = spec.precision.expect("precision parses");
        assert_eq!(precision.half_width, 0.5);
        assert_eq!(precision.max_trials, 65536);
        // Unspecified sub-fields take the adaptive defaults.
        assert_eq!(precision.ci, Precision::default().ci);
        let bare = serde_json::to_string(&ScenarioSpec::default()).unwrap();
        assert!(
            !bare.contains("precision"),
            "an unset precision must not appear in serialized specs: {bare}"
        );
        // Round-trips when set, so it participates in the canonical
        // serialization (and therefore the cache identity).
        let s = serde_json::to_string(&spec).unwrap();
        assert!(s.contains("precision"), "{s}");
        let back: ScenarioSpec = serde_json::from_str(&s).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn precision_summary_aggregates_across_sweep_points() {
        let stats = TrialStats::from_metrics(&[1.0, 2.0], &[3.0, 4.0]);
        let report = |trials_used, achieved, met, best_effort| PrecisionReport {
            ci: 0.95,
            target_half_width: 0.5,
            trials_used,
            achieved_half_width: achieved,
            met,
            best_effort,
        };
        let sweep = ScenarioResult::Sweep {
            points: vec![
                SweepPointResult {
                    p: 0.1,
                    stats: stats.clone(),
                    precision: Some(report(128, 0.2, true, false)),
                },
                SweepPointResult {
                    p: 0.5,
                    stats: stats.clone(),
                    precision: Some(report(4096, 0.7, false, true)),
                },
            ],
        };
        let agg = sweep.precision_summary().expect("adaptive sweep");
        assert_eq!(agg.trials_used, 128 + 4096);
        assert_eq!(agg.achieved_half_width, 0.7);
        assert!(!agg.met, "one unmet point spoils the aggregate");
        assert!(agg.best_effort);
        assert!(sweep.best_effort());

        let fixed = ScenarioResult::Sweep {
            points: vec![SweepPointResult {
                p: 0.1,
                stats: stats.clone(),
                precision: None,
            }],
        };
        assert!(fixed.precision_summary().is_none());
        assert!(!fixed.best_effort());
        let adaptive_stats = ScenarioResult::Stats {
            stats,
            precision: Some(report(256, 0.3, true, false)),
        };
        assert!(!adaptive_stats.best_effort());
        assert_eq!(
            adaptive_stats.precision_summary().unwrap().trials_used,
            256
        );
        // Fixed-budget results stay byte-identical on the wire: no
        // precision key appears when the option is unset.
        let s = serde_json::to_string(&fixed).unwrap();
        assert!(!s.contains("precision"), "{s}");
    }

    #[test]
    fn model_kinds_round_trip() {
        for model in [
            FailureSpec::Uniform { p: 0.25 },
            FailureSpec::S1,
            FailureSpec::S2,
            FailureSpec::Bands {
                probs: [0.5, 0.05, 0.005],
            },
            FailureSpec::Physics {
                class: StormClass::Extreme,
                shutdown: true,
            },
        ] {
            let s = serde_json::to_string(&model).unwrap();
            let back: FailureSpec = serde_json::from_str(&s).unwrap();
            assert_eq!(back, model, "{s}");
        }
    }
}
