//! The request and response value types of the scenario service.
//!
//! A [`ScenarioSpec`] is the unit of work: which dataset bundle, which
//! network, which failure model, the Monte Carlo parameters, and which
//! analysis to run over the outcomes. Every field has a serde default so
//! the minimal NDJSON request is `{}` (test-scale submarine network, S2
//! band model, paper-default Monte Carlo, aggregate statistics).

use serde::{Deserialize, Serialize};
use solarstorm_sim::{Kernel, MonteCarloConfig, TrialOutcome, TrialStats};
use solarstorm_solar::StormClass;

/// Which dataset bundle a scenario runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum Scale {
    /// Scaled-down datasets: fast, suitable for interactive queries.
    #[default]
    Test,
    /// Paper-scale datasets (470 submarine cables, 200k routers);
    /// expensive to build the first time, shared afterwards.
    Paper,
}

/// Which generated network a scenario runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum NetworkSel {
    /// Global submarine-cable network (§4.1.1).
    #[default]
    Submarine,
    /// US long-haul fiber (§4.1.2).
    Intertubes,
    /// Global ITU land network (§4.1.3).
    Itu,
}

/// Serializable selection of a repeater-failure model.
///
/// Mirrors the `solarstorm-gic` model family: the paper's uniform-`p`
/// model (Figs. 6–7), the S1/S2 latitude-band models (Fig. 8), arbitrary
/// band probabilities, and the physics chain calibrated per storm class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FailureSpec {
    /// Uniform per-repeater failure probability.
    Uniform {
        /// Probability in `[0, 1]`.
        p: f64,
    },
    /// The paper's S1 ("high failure") band model.
    S1,
    /// The paper's S2 ("low failure") band model — the default.
    #[default]
    S2,
    /// Custom `[>60°, 40–60°, <40°]` band probabilities.
    Bands {
        /// Per-band probabilities, highest latitude first.
        probs: [f64; 3],
    },
    /// Physics-chain model calibrated to a storm class.
    Physics {
        /// Storm class driving the geoelectric field.
        class: StormClass,
        /// Model cables as powered off (§5.2 mitigation posture).
        #[serde(default)]
        shutdown: bool,
    },
}

/// Which analysis the engine runs over the selected scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum AnalysisRequest {
    /// Aggregate Monte Carlo statistics (mean/σ of the two paper
    /// metrics) — the default.
    #[default]
    Stats,
    /// Per-trial outcome summaries, in trial order.
    Outcomes,
    /// A registered experiment by registry id (`E0`–`E13`, `A1`–`A15`);
    /// returns the rendered report or figure CSV. The failure-model and
    /// network selections are ignored where the experiment prescribes
    /// its own (e.g. Fig. 8 sweeps S1 and S2 itself).
    Experiment {
        /// Registry id, as listed by `stormsim index`.
        id: String,
    },
    /// Synthetic workload: hold a worker for `ms` milliseconds (capped
    /// at 5000). Exists for load tests and queue/drain diagnostics.
    Sleep {
        /// Milliseconds to sleep.
        ms: u64,
    },
    /// A uniform failure-probability sweep over the given points,
    /// evaluated under the spec's `kernel`. The spec's failure-model
    /// selection is ignored (the sweep prescribes its own uniform
    /// models); the Monte Carlo parameters apply to every point.
    SweepAxis {
        /// Sweep probabilities, each in `[0, 1]`. With the `crn_axis`
        /// kernel a non-decreasing list runs as one common-random-
        /// numbers sweep; anything else falls back to per-point.
        points: Vec<f64>,
    },
}

/// One scenario-evaluation request: the engine's unit of work and the
/// value whose canonical serialization content-addresses the cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(deny_unknown_fields)]
pub struct ScenarioSpec {
    /// Dataset bundle scale.
    #[serde(default)]
    pub scale: Scale,
    /// Which network to evaluate.
    #[serde(default)]
    pub network: NetworkSel,
    /// Failure model.
    #[serde(default)]
    pub model: FailureSpec,
    /// Monte Carlo parameters (spacing, trials, seed, threads).
    #[serde(default)]
    pub mc: MonteCarloConfig,
    /// Requested analysis.
    #[serde(default)]
    pub analysis: AnalysisRequest,
    /// Which Monte Carlo kernel evaluates sweeps and stats: the
    /// bit-parallel block kernel (`bitpar64`), the common-random-numbers
    /// axis kernel (`crn_axis`), or the historical per-point kernel
    /// (`per_point`). The kernels draw different RNG streams, so the
    /// resolved kernel is part of the scenario's cache identity. Unset,
    /// the engine picks per analysis (see
    /// [`ScenarioSpec::effective_kernel`]).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub kernel: Option<Kernel>,
    /// Optional per-request deadline, in milliseconds from admission
    /// (queue wait counts against it). A run still going when it
    /// expires is cancelled cooperatively and answered with a
    /// `deadline` error; its partial work is discarded, never cached.
    /// Unset, the engine-wide default
    /// ([`crate::EngineConfig::default_deadline_ms`]) applies.
    ///
    /// The deadline is *not* part of the scenario's identity: two specs
    /// differing only here share one cache entry and one in-flight
    /// computation (the engine hashes the spec with this field
    /// cleared).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deadline_ms: Option<u64>,
    /// Embed the request's span tree inline in the response (`trace`
    /// field) and force the trace's retention in the flight recorder.
    ///
    /// Like `deadline_ms`, this is *not* part of the scenario's cache
    /// identity: a traced and an untraced request for the same scenario
    /// share one cache entry and one in-flight computation (the engine
    /// hashes the spec with this field cleared).
    #[serde(default, skip_serializing_if = "is_false")]
    pub trace: bool,
}

/// `skip_serializing_if` helper: keeps `trace: false` off the wire so
/// canonical serializations (and spec hashes) are unchanged for
/// untraced requests.
fn is_false(b: &bool) -> bool {
    !*b
}

impl ScenarioSpec {
    /// The kernel this scenario actually runs under. An explicit choice
    /// wins; otherwise the engine picks per analysis: plain `Stats`
    /// defaults to the bit-parallel `bitpar64` kernel (statistically
    /// equivalent, ~an order of magnitude faster), `Outcomes` defaults
    /// to the reference `per_point` stream (per-trial results are the
    /// product, so stay bit-compatible with historical outputs), and
    /// everything else — sweeps and experiments, where cross-point
    /// contrasts matter — defaults to the common-random-numbers
    /// `crn_axis` kernel.
    pub fn effective_kernel(&self) -> Kernel {
        if let Some(kernel) = self.kernel {
            return kernel;
        }
        match self.analysis {
            AnalysisRequest::Stats => Kernel::Bitpar64,
            AnalysisRequest::Outcomes => Kernel::PerPoint,
            _ => Kernel::CrnAxis,
        }
    }
}

/// Per-trial summary returned by [`AnalysisRequest::Outcomes`]: the two
/// paper metrics plus the dead-cable count, without the per-cable mask.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutcomeSummary {
    /// Trial index (deterministic under any thread count).
    pub trial: usize,
    /// Percentage of cables that failed.
    pub cables_failed_pct: f64,
    /// Percentage of nodes left unreachable.
    pub nodes_unreachable_pct: f64,
    /// Number of dead cables.
    pub cables_dead: usize,
}

impl OutcomeSummary {
    /// Summarizes one trial outcome.
    pub fn from_outcome(trial: usize, o: &TrialOutcome) -> Self {
        OutcomeSummary {
            trial,
            cables_failed_pct: o.cables_failed_pct,
            nodes_unreachable_pct: o.nodes_unreachable_pct,
            cables_dead: o.dead.iter().filter(|d| **d).count(),
        }
    }
}

/// The result of evaluating one [`ScenarioSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ScenarioResult {
    /// Aggregate Monte Carlo statistics.
    Stats {
        /// The aggregated batch statistics.
        stats: TrialStats,
    },
    /// Per-trial summaries.
    Outcomes {
        /// One summary per trial, in trial order.
        outcomes: Vec<OutcomeSummary>,
    },
    /// A rendered experiment report or figure CSV.
    Report {
        /// Registry id that produced the report.
        id: String,
        /// Rendered text (table or CSV).
        text: String,
    },
    /// Acknowledgement of a synthetic sleep workload.
    Slept {
        /// Milliseconds slept.
        ms: u64,
    },
    /// A uniform-probability sweep: one aggregated statistics entry per
    /// requested point, in request order.
    Sweep {
        /// `(probability, stats)` per sweep point.
        points: Vec<SweepPointResult>,
    },
}

/// One point of an [`AnalysisRequest::SweepAxis`] response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPointResult {
    /// Uniform per-repeater failure probability at this point.
    pub p: f64,
    /// Aggregated Monte Carlo statistics at this point.
    pub stats: TrialStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_is_all_defaults() {
        let spec: ScenarioSpec = serde_json::from_str("{}").unwrap();
        assert_eq!(spec, ScenarioSpec::default());
        assert_eq!(spec.scale, Scale::Test);
        assert_eq!(spec.network, NetworkSel::Submarine);
        assert_eq!(spec.model, FailureSpec::S2);
        assert_eq!(spec.analysis, AnalysisRequest::Stats);
        assert_eq!(spec.mc, MonteCarloConfig::default());
        assert_eq!(spec.kernel, None);
        // Default Stats analysis resolves to the bit-parallel kernel.
        assert_eq!(spec.effective_kernel(), Kernel::Bitpar64);
    }

    #[test]
    fn effective_kernel_resolves_per_analysis() {
        let mut spec = ScenarioSpec::default();
        assert_eq!(spec.effective_kernel(), Kernel::Bitpar64);
        spec.analysis = AnalysisRequest::Outcomes;
        assert_eq!(spec.effective_kernel(), Kernel::PerPoint);
        spec.analysis = AnalysisRequest::SweepAxis {
            points: vec![0.1, 0.5],
        };
        assert_eq!(spec.effective_kernel(), Kernel::CrnAxis);
        // An explicit kernel always wins.
        spec.kernel = Some(Kernel::Bitpar64);
        assert_eq!(spec.effective_kernel(), Kernel::Bitpar64);
        spec.analysis = AnalysisRequest::Stats;
        spec.kernel = Some(Kernel::PerPoint);
        assert_eq!(spec.effective_kernel(), Kernel::PerPoint);
        // An unset kernel stays off the wire.
        let bare = serde_json::to_string(&ScenarioSpec::default()).unwrap();
        assert!(
            !bare.contains("kernel"),
            "an unset kernel must not appear in serialized specs: {bare}"
        );
    }

    #[test]
    fn kernel_and_sweep_axis_parse() {
        let spec: ScenarioSpec = serde_json::from_str(
            r#"{"kernel":"per_point","analysis":{"kind":"sweep_axis","points":[0.01,0.1,1.0]}}"#,
        )
        .unwrap();
        assert_eq!(spec.kernel, Some(Kernel::PerPoint));
        assert_eq!(spec.effective_kernel(), Kernel::PerPoint);
        assert_eq!(
            spec.analysis,
            AnalysisRequest::SweepAxis {
                points: vec![0.01, 0.1, 1.0]
            }
        );
        let back = serde_json::to_string(&spec.kernel).unwrap();
        assert_eq!(back, r#""per_point""#);
        let bitpar: ScenarioSpec = serde_json::from_str(r#"{"kernel":"bitpar64"}"#).unwrap();
        assert_eq!(bitpar.kernel, Some(Kernel::Bitpar64));
    }

    #[test]
    fn partial_mc_override_keeps_other_defaults() {
        let spec: ScenarioSpec =
            serde_json::from_str(r#"{"mc": {"trials": 99}, "model": {"kind": "s1"}}"#).unwrap();
        assert_eq!(spec.mc.trials, 99);
        assert_eq!(spec.mc.seed, MonteCarloConfig::default().seed);
        assert_eq!(spec.model, FailureSpec::S1);
    }

    #[test]
    fn unknown_fields_are_rejected() {
        assert!(serde_json::from_str::<ScenarioSpec>(r#"{"bogus": 1}"#).is_err());
    }

    #[test]
    fn deadline_parses_and_stays_off_the_wire_when_unset() {
        let spec: ScenarioSpec = serde_json::from_str(r#"{"deadline_ms": 250}"#).unwrap();
        assert_eq!(spec.deadline_ms, Some(250));
        let bare = serde_json::to_string(&ScenarioSpec::default()).unwrap();
        assert!(
            !bare.contains("deadline_ms"),
            "an unset deadline must not appear in serialized specs: {bare}"
        );
    }

    #[test]
    fn trace_flag_parses_and_stays_off_the_wire_when_false() {
        let spec: ScenarioSpec = serde_json::from_str(r#"{"trace": true}"#).unwrap();
        assert!(spec.trace);
        let bare = serde_json::to_string(&ScenarioSpec::default()).unwrap();
        assert!(
            !bare.contains("trace"),
            "trace: false must not appear in serialized specs: {bare}"
        );
    }

    #[test]
    fn model_kinds_round_trip() {
        for model in [
            FailureSpec::Uniform { p: 0.25 },
            FailureSpec::S1,
            FailureSpec::S2,
            FailureSpec::Bands {
                probs: [0.5, 0.05, 0.005],
            },
            FailureSpec::Physics {
                class: StormClass::Extreme,
                shutdown: true,
            },
        ] {
            let s = serde_json::to_string(&model).unwrap();
            let back: FailureSpec = serde_json::from_str(&s).unwrap();
            assert_eq!(back, model, "{s}");
        }
    }
}
