//! Content-addressed LRU result cache.
//!
//! Entries are keyed by the FNV-1a hash of the scenario's canonical
//! serialization; each entry stores that serialization so a hash
//! collision is detected and treated as a miss (the newer scenario
//! evicts the colliding entry) rather than returning a wrong result.

use crate::spec::ScenarioResult;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

struct Entry {
    canon: String,
    value: Arc<ScenarioResult>,
    last_used: u64,
}

struct Inner {
    map: HashMap<u64, Entry>,
    tick: u64,
}

/// A bounded LRU cache of scenario results shared by all workers.
pub(crate) struct ResultCache {
    cap: usize,
    inner: Mutex<Inner>,
}

impl ResultCache {
    /// Creates a cache holding at most `cap` entries (`cap == 0`
    /// disables caching entirely).
    pub fn new(cap: usize) -> Self {
        ResultCache {
            cap,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
        }
    }

    /// Looks up a result, bumping its recency on a hit. The canonical
    /// string must match, not just the hash.
    pub fn get(&self, hash: u64, canon: &str) -> Option<Arc<ScenarioResult>> {
        let mut g = self.inner.lock();
        g.tick += 1;
        let tick = g.tick;
        let e = g.map.get_mut(&hash)?;
        if e.canon != canon {
            return None;
        }
        e.last_used = tick;
        Some(Arc::clone(&e.value))
    }

    /// Inserts a result, evicting the least-recently-used entry when
    /// full. A colliding hash with a different canonical string is
    /// overwritten by the newcomer.
    pub fn insert(&self, hash: u64, canon: String, value: Arc<ScenarioResult>) {
        if self.cap == 0 {
            return;
        }
        let mut g = self.inner.lock();
        g.tick += 1;
        let tick = g.tick;
        if !g.map.contains_key(&hash) && g.map.len() >= self.cap {
            let oldest = g
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k);
            if let Some(oldest) = oldest {
                g.map.remove(&oldest);
            }
        }
        g.map.insert(
            hash,
            Entry {
                canon,
                value,
                last_used: tick,
            },
        );
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(ms: u64) -> Arc<ScenarioResult> {
        Arc::new(ScenarioResult::Slept { ms })
    }

    #[test]
    fn hit_requires_matching_canon() {
        let c = ResultCache::new(4);
        c.insert(7, "a".into(), res(1));
        assert!(c.get(7, "a").is_some());
        assert!(c.get(7, "b").is_none(), "hash collision must miss");
        assert!(c.get(8, "a").is_none());
    }

    #[test]
    fn evicts_least_recently_used_at_cap() {
        let c = ResultCache::new(2);
        c.insert(1, "k1".into(), res(1));
        c.insert(2, "k2".into(), res(2));
        assert!(c.get(1, "k1").is_some()); // bump k1; k2 is now LRU
        c.insert(3, "k3".into(), res(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(2, "k2").is_none(), "k2 was LRU and must be evicted");
        assert!(c.get(1, "k1").is_some());
        assert!(c.get(3, "k3").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = ResultCache::new(0);
        c.insert(1, "k".into(), res(1));
        assert_eq!(c.len(), 0);
        assert!(c.get(1, "k").is_none());
    }

    #[test]
    fn reinsert_updates_value_without_growth() {
        let c = ResultCache::new(2);
        c.insert(1, "k".into(), res(1));
        c.insert(1, "k".into(), res(9));
        assert_eq!(c.len(), 1);
        assert_eq!(*c.get(1, "k").unwrap(), ScenarioResult::Slept { ms: 9 });
    }
}
