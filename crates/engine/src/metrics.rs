//! Lock-free service counters, a log-scaled latency histogram, and
//! Prometheus-compatible text exposition.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of power-of-two latency buckets (bucket `i` holds requests
/// that finished in `< 2^i` µs; the last bucket absorbs the tail).
const BUCKETS: usize = 40;

/// Internal registry of atomic counters. One per engine; cheap to
/// update from every worker and connection thread.
pub(crate) struct Registry {
    pub requests: AtomicU64,
    pub completed: AtomicU64,
    pub errors: AtomicU64,
    pub rejected_busy: AtomicU64,
    pub panics: AtomicU64,
    pub deadline_exceeded: AtomicU64,
    pub load_shed: AtomicU64,
    /// Adaptive runs cut short by their deadline that answered with
    /// best-effort precision (and were not cached).
    pub best_effort_results: AtomicU64,
    /// 1 while the engine is in cache-only degraded mode, else 0.
    pub degraded: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub dedup_joins: AtomicU64,
    pub computations: AtomicU64,
    pub queue_depth: AtomicU64,
    pub hedge_hits: AtomicU64,
    pub hedge_misses: AtomicU64,
    latency_count: AtomicU64,
    latency_sum_us: AtomicU64,
    latency_max_us: AtomicU64,
    latency_buckets: [AtomicU64; BUCKETS],
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            load_shed: AtomicU64::new(0),
            best_effort_results: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            dedup_joins: AtomicU64::new(0),
            computations: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            hedge_hits: AtomicU64::new(0),
            hedge_misses: AtomicU64::new(0),
            latency_count: AtomicU64::new(0),
            latency_sum_us: AtomicU64::new(0),
            latency_max_us: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn bucket_index(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

impl Registry {
    /// Records one request latency in microseconds.
    pub fn record_latency(&self, us: u64) {
        self.latency_count.fetch_add(1, Relaxed);
        self.latency_sum_us.fetch_add(us, Relaxed);
        self.latency_max_us.fetch_max(us, Relaxed);
        self.latency_buckets[bucket_index(us)].fetch_add(1, Relaxed);
    }

    /// Decrements the queue-depth gauge, saturating at zero. A racing
    /// pair of increments/decrements must never wrap the gauge to
    /// `u64::MAX` and report a billion-deep queue.
    pub fn dec_queue_depth(&self) {
        let _ = self
            .queue_depth
            .fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(1)));
    }

    /// Takes a consistent-enough snapshot of every counter, attaching
    /// the caller-provided per-stage timing aggregates.
    pub fn snapshot(&self, cache_entries: usize, stages: Vec<StageSummary>) -> EngineMetrics {
        let mut counts = vec![0u64; BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(&self.latency_buckets) {
            *slot = bucket.load(Relaxed);
        }
        let count = self.latency_count.load(Relaxed);
        let sum_us = self.latency_sum_us.load(Relaxed);
        let max_us = self.latency_max_us.load(Relaxed);
        EngineMetrics {
            requests: self.requests.load(Relaxed),
            completed: self.completed.load(Relaxed),
            errors: self.errors.load(Relaxed),
            rejected_busy: self.rejected_busy.load(Relaxed),
            panics: self.panics.load(Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Relaxed),
            load_shed: self.load_shed.load(Relaxed),
            best_effort_results: self.best_effort_results.load(Relaxed),
            degraded: self.degraded.load(Relaxed) != 0,
            cache_hits: self.cache_hits.load(Relaxed),
            cache_misses: self.cache_misses.load(Relaxed),
            dedup_joins: self.dedup_joins.load(Relaxed),
            computations: self.computations.load(Relaxed),
            queue_depth: self.queue_depth.load(Relaxed),
            hedge_hits: self.hedge_hits.load(Relaxed),
            hedge_misses: self.hedge_misses.load(Relaxed),
            cache_entries: cache_entries as u64,
            latency: LatencySummary {
                count,
                mean_us: sum_us.checked_div(count).unwrap_or(0),
                sum_us,
                p50_us: percentile_from_buckets(&counts, count, 0.50, max_us),
                p99_us: percentile_from_buckets(&counts, count, 0.99, max_us),
                max_us,
            },
            latency_buckets: counts,
            obs_dropped_events: solarstorm_obs::global().dropped(),
            trace_drops: solarstorm_obs::recorder().dropped(),
            stages,
        }
    }
}

/// True percentile over power-of-two bucket counts: the upper bound
/// (2^i µs; bucket 0 is < 1 µs) of the bucket containing the target
/// rank, or `max_us` when the rank falls past the recorded buckets.
fn percentile_from_buckets(counts: &[u64], total: u64, p: f64, max_us: u64) -> u64 {
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * p).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, c) in counts.iter().enumerate() {
        seen += c;
        if seen >= target {
            return 1u64 << i.min(63);
        }
    }
    max_us
}

/// Reads the process-wide pipeline-stage aggregates maintained by
/// `solarstorm-obs` (they accumulate even with logging off) into the
/// serializable form `EngineMetrics` carries.
pub(crate) fn stage_summaries() -> Vec<StageSummary> {
    solarstorm_obs::stage_snapshot()
        .into_iter()
        .map(|s| StageSummary {
            stage: s.name.to_string(),
            count: s.count,
            total_us: s.total_ns / 1_000,
            max_us: s.max_ns / 1_000,
        })
        .collect()
}

/// Latency distribution summary (microseconds; percentiles are the
/// upper bound of the matching power-of-two histogram bucket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: u64,
    /// Mean latency.
    pub mean_us: u64,
    /// Total latency across all measured requests (the histogram's
    /// `_sum`). Missing in snapshots from older engines, hence the
    /// default.
    #[serde(default)]
    pub sum_us: u64,
    /// Median (bucketed upper bound).
    pub p50_us: u64,
    /// 99th percentile (bucketed upper bound).
    pub p99_us: u64,
    /// Exact maximum observed.
    pub max_us: u64,
}

/// Aggregate wall time for one named pipeline stage across the whole
/// process (dataset builds, Monte Carlo batches, engine stages).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSummary {
    /// Stage name (e.g. `monte_carlo`, `engine_compute`, `queue_wait`).
    pub stage: String,
    /// Times the stage ran.
    pub count: u64,
    /// Total wall time, microseconds.
    pub total_us: u64,
    /// Longest single run, microseconds.
    pub max_us: u64,
}

/// A point-in-time snapshot of the engine's service counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Requests received (including rejected ones).
    pub requests: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an error other than `Busy`.
    pub errors: u64,
    /// Requests rejected because the queue was full.
    pub rejected_busy: u64,
    /// Worker panics caught at the job boundary (the worker survived).
    /// Missing in snapshots from older engines, hence the default.
    #[serde(default)]
    pub panics: u64,
    /// Requests whose deadline expired before completion.
    #[serde(default)]
    pub deadline_exceeded: u64,
    /// Cache misses shed without queueing while degraded.
    #[serde(default)]
    pub load_shed: u64,
    /// Adaptive runs cut short by their deadline that answered with
    /// best-effort precision (never cached). Zero unless specs request
    /// adaptive precision under deadlines.
    #[serde(default)]
    pub best_effort_results: u64,
    /// Whether the engine is currently in cache-only degraded mode.
    #[serde(default)]
    pub degraded: bool,
    /// Requests answered straight from the result cache.
    pub cache_hits: u64,
    /// Requests that missed the cache.
    pub cache_misses: u64,
    /// Requests that joined another caller's in-flight computation.
    pub dedup_joins: u64,
    /// Scenario computations actually executed by workers.
    pub computations: u64,
    /// Jobs currently queued (not yet picked up by a worker).
    pub queue_depth: u64,
    /// Shard-local cache misses answered from a sibling shard's cache
    /// by the hedged read path. Zero outside a sharded runtime.
    #[serde(default)]
    pub hedge_hits: u64,
    /// Hedged sibling-cache probes that found nothing (the shard paid
    /// for compute). Zero outside a sharded runtime.
    #[serde(default)]
    pub hedge_misses: u64,
    /// Entries currently in the result cache.
    pub cache_entries: u64,
    /// Request-latency distribution.
    pub latency: LatencySummary,
    /// Raw power-of-two latency histogram: bucket `i` counts requests
    /// that finished in `< 2^i` µs (bucket 0 is < 1 µs). This is what
    /// makes per-shard snapshots mergeable into true process-wide
    /// percentiles. Missing (empty) in snapshots from older engines.
    #[serde(default)]
    pub latency_buckets: Vec<u64>,
    /// Events the observability ring buffer dropped because it was
    /// full. Process-global (shared by every shard in this process).
    #[serde(default)]
    pub obs_dropped_events: u64,
    /// Completed traces the flight recorder dropped because its
    /// staging ring was full. Process-global, like
    /// `obs_dropped_events`.
    #[serde(default)]
    pub trace_drops: u64,
    /// Per-stage timing aggregates, sorted by stage name. Missing in
    /// snapshots from older engines, hence the serde default.
    #[serde(default)]
    pub stages: Vec<StageSummary>,
}

fn prom_scalar(out: &mut String, name: &str, kind: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

impl EngineMetrics {
    /// Merges per-shard snapshots into one process-wide view: counters
    /// and gauges sum, `degraded` is true if any shard is degraded, and
    /// the latency summary merges exactly — counts and sums add, mean
    /// is the weighted mean, and p50/p99 are recomputed from the
    /// elementwise sum of the shards' raw power-of-two histograms
    /// (`latency_buckets`), so one hot shard cannot masquerade as the
    /// whole fleet's tail. Only when a shard lacks its histogram (a
    /// snapshot from an older engine) do the percentiles fall back to
    /// the worst shard's, an upper bound. Process-global values —
    /// the per-stage aggregates, `obs_dropped_events`, `trace_drops`
    /// (every shard snapshots the same process-wide tables) — are kept
    /// from the first shard rather than summed `N` times.
    pub fn merged<'a>(shards: impl IntoIterator<Item = &'a EngineMetrics>) -> EngineMetrics {
        // A legacy snapshot carries mean but not sum; reconstruct.
        fn sum_us_of(l: &LatencySummary) -> u64 {
            if l.sum_us != 0 {
                l.sum_us
            } else {
                l.count.saturating_mul(l.mean_us)
            }
        }
        let mut it = shards.into_iter();
        let mut out = match it.next() {
            Some(first) => first.clone(),
            None => {
                return EngineMetrics {
                    requests: 0,
                    completed: 0,
                    errors: 0,
                    rejected_busy: 0,
                    panics: 0,
                    deadline_exceeded: 0,
                    load_shed: 0,
                    best_effort_results: 0,
                    degraded: false,
                    cache_hits: 0,
                    cache_misses: 0,
                    dedup_joins: 0,
                    computations: 0,
                    queue_depth: 0,
                    hedge_hits: 0,
                    hedge_misses: 0,
                    cache_entries: 0,
                    latency: LatencySummary {
                        count: 0,
                        mean_us: 0,
                        sum_us: 0,
                        p50_us: 0,
                        p99_us: 0,
                        max_us: 0,
                    },
                    latency_buckets: Vec::new(),
                    obs_dropped_events: 0,
                    trace_drops: 0,
                    stages: Vec::new(),
                }
            }
        };
        let mut sum_us = sum_us_of(&out.latency);
        let mut buckets = std::mem::take(&mut out.latency_buckets);
        let mut buckets_complete = !buckets.is_empty();
        for m in it {
            out.requests += m.requests;
            out.completed += m.completed;
            out.errors += m.errors;
            out.rejected_busy += m.rejected_busy;
            out.panics += m.panics;
            out.deadline_exceeded += m.deadline_exceeded;
            out.load_shed += m.load_shed;
            out.best_effort_results += m.best_effort_results;
            out.degraded |= m.degraded;
            out.cache_hits += m.cache_hits;
            out.cache_misses += m.cache_misses;
            out.dedup_joins += m.dedup_joins;
            out.computations += m.computations;
            out.queue_depth += m.queue_depth;
            out.hedge_hits += m.hedge_hits;
            out.hedge_misses += m.hedge_misses;
            out.cache_entries += m.cache_entries;
            out.latency.count += m.latency.count;
            sum_us = sum_us.saturating_add(sum_us_of(&m.latency));
            out.latency.p50_us = out.latency.p50_us.max(m.latency.p50_us);
            out.latency.p99_us = out.latency.p99_us.max(m.latency.p99_us);
            out.latency.max_us = out.latency.max_us.max(m.latency.max_us);
            if m.latency_buckets.is_empty() {
                buckets_complete = false;
            } else {
                if buckets.len() < m.latency_buckets.len() {
                    buckets.resize(m.latency_buckets.len(), 0);
                }
                for (slot, c) in buckets.iter_mut().zip(&m.latency_buckets) {
                    *slot += c;
                }
            }
        }
        out.latency.mean_us = sum_us.checked_div(out.latency.count).unwrap_or(0);
        out.latency.sum_us = sum_us;
        if buckets_complete {
            let total: u64 = buckets.iter().sum();
            if total > 0 {
                out.latency.p50_us =
                    percentile_from_buckets(&buckets, total, 0.50, out.latency.max_us);
                out.latency.p99_us =
                    percentile_from_buckets(&buckets, total, 0.99, out.latency.max_us);
            }
            out.latency_buckets = buckets;
        } else {
            // A shard without its histogram poisons the merged one;
            // better to omit it than to publish a partial sum as if it
            // covered every shard.
            out.latency_buckets = Vec::new();
        }
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` comment pairs followed by
    /// `name[{labels}] value` sample lines.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        for (name, help, v) in [
            (
                "stormsim_requests_total",
                "Requests received (including rejected ones).",
                self.requests,
            ),
            (
                "stormsim_completed_total",
                "Requests answered successfully.",
                self.completed,
            ),
            (
                "stormsim_errors_total",
                "Requests answered with an error other than busy.",
                self.errors,
            ),
            (
                "stormsim_rejected_busy_total",
                "Requests rejected because the queue was full.",
                self.rejected_busy,
            ),
            (
                "stormsim_panics_total",
                "Worker panics caught at the job boundary.",
                self.panics,
            ),
            (
                "stormsim_deadline_exceeded_total",
                "Requests whose deadline expired before completion.",
                self.deadline_exceeded,
            ),
            (
                "stormsim_load_shed_total",
                "Cache misses shed without queueing while degraded.",
                self.load_shed,
            ),
            (
                "stormsim_best_effort_results_total",
                "Deadline-cut adaptive runs answered with best-effort precision.",
                self.best_effort_results,
            ),
            (
                "stormsim_cache_hits_total",
                "Requests answered straight from the result cache.",
                self.cache_hits,
            ),
            (
                "stormsim_cache_misses_total",
                "Requests that missed the result cache.",
                self.cache_misses,
            ),
            (
                "stormsim_dedup_joins_total",
                "Requests that joined another caller's in-flight computation.",
                self.dedup_joins,
            ),
            (
                "stormsim_computations_total",
                "Scenario computations actually executed by workers.",
                self.computations,
            ),
            (
                "stormsim_hedge_hits_total",
                "Shard-local cache misses answered from a sibling shard's cache.",
                self.hedge_hits,
            ),
            (
                "stormsim_hedge_misses_total",
                "Hedged sibling-cache probes that found nothing.",
                self.hedge_misses,
            ),
        ] {
            prom_scalar(&mut out, name, "counter", help, v);
        }
        for (name, help, v) in [
            (
                "stormsim_queue_depth",
                "Jobs currently queued (not yet picked up by a worker).",
                self.queue_depth,
            ),
            (
                "stormsim_cache_entries",
                "Entries currently in the result cache.",
                self.cache_entries,
            ),
            (
                "stormsim_degraded",
                "1 while the engine is in cache-only degraded mode.",
                u64::from(self.degraded),
            ),
        ] {
            prom_scalar(&mut out, name, "gauge", help, v);
        }
        prom_scalar(
            &mut out,
            "stormsim_obs_dropped_events_total",
            "counter",
            "Observability ring-buffer events dropped because the ring was full.",
            self.obs_dropped_events,
        );
        prom_scalar(
            &mut out,
            "stormsim_trace_drops_total",
            "counter",
            "Completed traces dropped because the flight recorder staging ring was full.",
            self.trace_drops,
        );
        prom_scalar(
            &mut out,
            "stormsim_request_latency_measurements_total",
            "counter",
            "Request latencies recorded.",
            self.latency.count,
        );
        if !self.latency_buckets.is_empty() {
            // Cumulative histogram series. Bucket `i` of the raw
            // histogram counts latencies < 2^i µs (exclusive); the
            // `le` label is nominally inclusive, a ≤ 1 µs boundary
            // approximation accepted for power-of-two buckets.
            let name = "stormsim_request_latency_us";
            let _ = writeln!(
                out,
                "# HELP {name} Request latency histogram, microseconds (power-of-two buckets)."
            );
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for (i, c) in self.latency_buckets.iter().enumerate() {
                cum += c;
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", 1u64 << i.min(63));
            }
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"+Inf\"}} {}",
                cum.max(self.latency.count)
            );
            let _ = writeln!(out, "{name}_sum {}", self.latency.sum_us);
            let _ = writeln!(out, "{name}_count {}", cum.max(self.latency.count));
        }
        for (name, help, v) in [
            (
                "stormsim_request_latency_mean_us",
                "Mean request latency, microseconds.",
                self.latency.mean_us,
            ),
            (
                "stormsim_request_latency_p50_us",
                "Median request latency (bucketed upper bound), microseconds.",
                self.latency.p50_us,
            ),
            (
                "stormsim_request_latency_p99_us",
                "99th-percentile request latency (bucketed upper bound), microseconds.",
                self.latency.p99_us,
            ),
            (
                "stormsim_request_latency_max_us",
                "Maximum observed request latency, microseconds.",
                self.latency.max_us,
            ),
        ] {
            prom_scalar(&mut out, name, "gauge", help, v);
        }
        let stage_families: [(&str, &str, &str, fn(&StageSummary) -> u64); 3] = [
            (
                "stormsim_stage_runs_total",
                "counter",
                "Times each pipeline stage ran.",
                |s| s.count,
            ),
            (
                "stormsim_stage_duration_us_total",
                "counter",
                "Cumulative wall time per pipeline stage, microseconds.",
                |s| s.total_us,
            ),
            (
                "stormsim_stage_duration_us_max",
                "gauge",
                "Longest single run per pipeline stage, microseconds.",
                |s| s.max_us,
            ),
        ];
        for (name, kind, help, get) in stage_families {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for s in &self.stages {
                let _ = writeln!(out, "{name}{{stage=\"{}\"}} {}", s.stage, get(s));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(r: &Registry) -> EngineMetrics {
        r.snapshot(0, Vec::new())
    }

    #[test]
    fn buckets_are_log_scaled() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_index_edges() {
        // Exact powers of two land in the bucket whose upper bound is
        // the next power (bucket i holds < 2^i, so 2^k maps to k + 1).
        for k in 0..20u32 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), (k as usize + 1).min(BUCKETS - 1), "2^{k}");
            assert_eq!(
                bucket_index(v - 1),
                (k as usize).min(BUCKETS - 1),
                "2^{k}-1"
            );
        }
        // The tail bucket absorbs everything from 2^(BUCKETS-1) up.
        assert_eq!(bucket_index(1u64 << (BUCKETS - 1)), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX - 1), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // 0 µs (sub-microsecond request) is a valid measurement.
        let r = Registry::default();
        r.record_latency(0);
        r.record_latency(u64::MAX);
        let m = snap(&r);
        assert_eq!(m.latency.count, 2);
        assert_eq!(m.latency.max_us, u64::MAX);
    }

    #[test]
    fn queue_depth_decrement_saturates_at_zero() {
        let r = Registry::default();
        r.dec_queue_depth();
        assert_eq!(snap(&r).queue_depth, 0, "must not wrap to u64::MAX");
        r.queue_depth.fetch_add(2, Relaxed);
        r.dec_queue_depth();
        assert_eq!(snap(&r).queue_depth, 1);
        r.dec_queue_depth();
        r.dec_queue_depth();
        assert_eq!(snap(&r).queue_depth, 0);
    }

    #[test]
    fn percentiles_bracket_the_samples() {
        let r = Registry::default();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 4000] {
            r.record_latency(us);
        }
        let m = snap(&r);
        assert_eq!(m.latency.count, 10);
        assert_eq!(m.latency.max_us, 4000);
        assert!(m.latency.p50_us >= 50 && m.latency.p50_us <= 128);
        assert!(m.latency.p99_us >= 4000);
        assert!(m.latency.mean_us > 0);
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let r = Registry::default();
        r.requests.fetch_add(3, Relaxed);
        r.record_latency(77);
        let m = r.snapshot(
            2,
            vec![StageSummary {
                stage: "compute".into(),
                count: 1,
                total_us: 9,
                max_us: 9,
            }],
        );
        let s = serde_json::to_string(&m).unwrap();
        let back: EngineMetrics = serde_json::from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn snapshots_without_stages_still_deserialize() {
        // Snapshots serialized before the stages field existed.
        let legacy = serde_json::json!({
            "requests": 1, "completed": 1, "errors": 0, "rejected_busy": 0,
            "cache_hits": 0, "cache_misses": 1, "dedup_joins": 0,
            "computations": 1, "queue_depth": 0, "cache_entries": 1,
            "latency": {"count": 1, "mean_us": 5, "p50_us": 8, "p99_us": 8, "max_us": 5}
        });
        let m: EngineMetrics = serde_json::from_value(legacy).unwrap();
        assert!(m.stages.is_empty());
        // The fault-tolerance counters postdate stages; they default too.
        assert_eq!(m.panics, 0);
        assert_eq!(m.deadline_exceeded, 0);
        assert_eq!(m.load_shed, 0);
        assert_eq!(m.best_effort_results, 0);
        assert!(!m.degraded);
    }

    #[test]
    fn fault_counters_reach_prometheus() {
        let r = Registry::default();
        r.panics.fetch_add(2, Relaxed);
        r.deadline_exceeded.fetch_add(3, Relaxed);
        r.load_shed.fetch_add(4, Relaxed);
        r.best_effort_results.fetch_add(5, Relaxed);
        r.degraded.store(1, Relaxed);
        let text = snap(&r).to_prometheus();
        assert!(text.contains("\nstormsim_panics_total 2\n"), "{text}");
        assert!(
            text.contains("\nstormsim_best_effort_results_total 5\n"),
            "{text}"
        );
        assert!(
            text.contains("\nstormsim_deadline_exceeded_total 3\n"),
            "{text}"
        );
        assert!(text.contains("\nstormsim_load_shed_total 4\n"), "{text}");
        assert!(text.contains("# TYPE stormsim_degraded gauge\n"), "{text}");
        assert!(text.contains("\nstormsim_degraded 1\n"), "{text}");
    }

    #[test]
    fn merged_sums_counters_and_recomputes_percentiles() {
        let a = Registry::default();
        a.requests.fetch_add(10, Relaxed);
        a.cache_hits.fetch_add(4, Relaxed);
        a.hedge_hits.fetch_add(2, Relaxed);
        a.record_latency(100);
        a.record_latency(100);
        let b = Registry::default();
        b.requests.fetch_add(5, Relaxed);
        b.degraded.store(1, Relaxed);
        b.hedge_misses.fetch_add(3, Relaxed);
        b.record_latency(4000);
        let (ma, mb) = (a.snapshot(3, Vec::new()), b.snapshot(1, Vec::new()));
        let m = EngineMetrics::merged([&ma, &mb]);
        assert_eq!(m.requests, 15);
        assert_eq!(m.cache_hits, 4);
        assert_eq!(m.hedge_hits, 2);
        assert_eq!(m.hedge_misses, 3);
        assert_eq!(m.cache_entries, 4);
        assert!(m.degraded);
        assert_eq!(m.latency.count, 3);
        // Mean of {100, 100, 4000}, exact now that shards carry sums.
        assert_eq!(m.latency.mean_us, 1400);
        assert_eq!(m.latency.sum_us, 4200);
        assert_eq!(m.latency.max_us, 4000);
        // True merged percentiles from the summed histograms: the
        // median of {100, 100, 4000} sits in the 100 µs bucket
        // (< 2^7 = 128), NOT in the slow shard's bucket.
        assert_eq!(m.latency.p50_us, 128);
        assert!(m.latency.p99_us >= 4000);

        let empty = EngineMetrics::merged([]);
        assert_eq!(empty.requests, 0);
        assert_eq!(empty.latency.count, 0);
        let one = EngineMetrics::merged([&ma]);
        assert_eq!(one, ma, "merging a single snapshot is the identity");
    }

    #[test]
    fn merged_percentiles_come_from_summed_histograms_not_the_worst_shard() {
        // Deliberately skewed shards: one fast and busy, one slow and
        // nearly idle. The worst-shard rule would report the slow
        // shard's median for the whole fleet.
        let a = Registry::default();
        for _ in 0..98 {
            a.record_latency(10);
        }
        let b = Registry::default();
        b.record_latency(500_000);
        b.record_latency(500_000);
        let (ma, mb) = (a.snapshot(0, Vec::new()), b.snapshot(0, Vec::new()));
        assert!(mb.latency.p50_us >= 500_000);
        let m = EngineMetrics::merged([&ma, &mb]);
        // 98 of 100 requests were fast: the true median is the fast
        // bucket's upper bound (10 µs < 2^4 = 16).
        assert_eq!(m.latency.count, 100);
        assert_eq!(m.latency.p50_us, 16);
        assert!(m.latency.p99_us >= 500_000);
        assert_eq!(m.latency.sum_us, 98 * 10 + 2 * 500_000);
        assert_eq!(m.latency_buckets.iter().sum::<u64>(), 100);

        // A shard without its histogram (legacy snapshot) forces the
        // conservative worst-shard fallback, and the merged snapshot
        // drops the (incomplete) histogram rather than publish it.
        let mut legacy = mb.clone();
        legacy.latency_buckets = Vec::new();
        let fallback = EngineMetrics::merged([&ma, &legacy]);
        assert_eq!(
            fallback.latency.p50_us,
            ma.latency.p50_us.max(mb.latency.p50_us)
        );
        assert!(fallback.latency_buckets.is_empty());
    }

    #[test]
    fn latency_histogram_and_drop_counters_reach_prometheus() {
        let r = Registry::default();
        r.record_latency(3); // bucket 2: < 4 µs
        r.record_latency(100); // bucket 7: < 128 µs
        r.record_latency(100);
        let text = snap(&r).to_prometheus();
        assert!(
            text.contains("# TYPE stormsim_request_latency_us histogram\n"),
            "{text}"
        );
        assert!(
            text.contains("stormsim_request_latency_us_bucket{le=\"4\"} 1\n"),
            "{text}"
        );
        // Cumulative: the 128 µs bucket includes the fast request.
        assert!(
            text.contains("stormsim_request_latency_us_bucket{le=\"128\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("stormsim_request_latency_us_bucket{le=\"+Inf\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("stormsim_request_latency_us_sum 203\n"),
            "{text}"
        );
        assert!(
            text.contains("stormsim_request_latency_us_count 3\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE stormsim_obs_dropped_events_total counter\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE stormsim_trace_drops_total counter\n"),
            "{text}"
        );
    }

    #[test]
    fn hedge_counters_reach_prometheus_and_survive_legacy_snapshots() {
        let r = Registry::default();
        r.hedge_hits.fetch_add(6, Relaxed);
        r.hedge_misses.fetch_add(1, Relaxed);
        let text = snap(&r).to_prometheus();
        assert!(text.contains("\nstormsim_hedge_hits_total 6\n"), "{text}");
        assert!(text.contains("\nstormsim_hedge_misses_total 1\n"), "{text}");
        // Pre-sharding snapshots lack the fields; serde defaults apply.
        let legacy = serde_json::json!({
            "requests": 1, "completed": 1, "errors": 0, "rejected_busy": 0,
            "cache_hits": 0, "cache_misses": 1, "dedup_joins": 0,
            "computations": 1, "queue_depth": 0, "cache_entries": 1,
            "latency": {"count": 1, "mean_us": 5, "p50_us": 8, "p99_us": 8, "max_us": 5}
        });
        let m: EngineMetrics = serde_json::from_value(legacy).unwrap();
        assert_eq!(m.hedge_hits, 0);
        assert_eq!(m.hedge_misses, 0);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let r = Registry::default();
        r.requests.fetch_add(7, Relaxed);
        r.record_latency(123);
        let m = r.snapshot(
            1,
            vec![StageSummary {
                stage: "monte_carlo".into(),
                count: 4,
                total_us: 1000,
                max_us: 400,
            }],
        );
        let text = m.to_prometheus();
        assert!(text.contains("# HELP stormsim_requests_total "));
        assert!(text.contains("# TYPE stormsim_requests_total counter\n"));
        assert!(text.contains("\nstormsim_requests_total 7\n"));
        assert!(text.contains("# TYPE stormsim_queue_depth gauge\n"));
        assert!(text.contains("stormsim_stage_duration_us_total{stage=\"monte_carlo\"} 1000\n"));
        assert!(text.ends_with('\n'));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
            value.parse::<u64>().expect("sample value is an integer");
        }
    }
}
