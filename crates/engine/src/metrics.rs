//! Lock-free service counters and a log-scaled latency histogram.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of power-of-two latency buckets (bucket `i` holds requests
/// that finished in `< 2^i` µs; the last bucket absorbs the tail).
const BUCKETS: usize = 40;

/// Internal registry of atomic counters. One per engine; cheap to
/// update from every worker and connection thread.
pub(crate) struct Registry {
    pub requests: AtomicU64,
    pub completed: AtomicU64,
    pub errors: AtomicU64,
    pub rejected_busy: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub dedup_joins: AtomicU64,
    pub computations: AtomicU64,
    pub queue_depth: AtomicU64,
    latency_count: AtomicU64,
    latency_sum_us: AtomicU64,
    latency_max_us: AtomicU64,
    latency_buckets: [AtomicU64; BUCKETS],
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            dedup_joins: AtomicU64::new(0),
            computations: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            latency_count: AtomicU64::new(0),
            latency_sum_us: AtomicU64::new(0),
            latency_max_us: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn bucket_index(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

impl Registry {
    /// Records one request latency in microseconds.
    pub fn record_latency(&self, us: u64) {
        self.latency_count.fetch_add(1, Relaxed);
        self.latency_sum_us.fetch_add(us, Relaxed);
        self.latency_max_us.fetch_max(us, Relaxed);
        self.latency_buckets[bucket_index(us)].fetch_add(1, Relaxed);
    }

    fn percentile_us(&self, counts: &[u64; BUCKETS], total: u64, p: f64) -> u64 {
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Upper bound of bucket i: 2^i µs (bucket 0 is < 1 µs).
                return 1u64 << i.min(63);
            }
        }
        self.latency_max_us.load(Relaxed)
    }

    /// Takes a consistent-enough snapshot of every counter.
    pub fn snapshot(&self, cache_entries: usize) -> EngineMetrics {
        let mut counts = [0u64; BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(&self.latency_buckets) {
            *slot = bucket.load(Relaxed);
        }
        let count = self.latency_count.load(Relaxed);
        EngineMetrics {
            requests: self.requests.load(Relaxed),
            completed: self.completed.load(Relaxed),
            errors: self.errors.load(Relaxed),
            rejected_busy: self.rejected_busy.load(Relaxed),
            cache_hits: self.cache_hits.load(Relaxed),
            cache_misses: self.cache_misses.load(Relaxed),
            dedup_joins: self.dedup_joins.load(Relaxed),
            computations: self.computations.load(Relaxed),
            queue_depth: self.queue_depth.load(Relaxed),
            cache_entries: cache_entries as u64,
            latency: LatencySummary {
                count,
                mean_us: if count == 0 {
                    0
                } else {
                    self.latency_sum_us.load(Relaxed) / count
                },
                p50_us: self.percentile_us(&counts, count, 0.50),
                p99_us: self.percentile_us(&counts, count, 0.99),
                max_us: self.latency_max_us.load(Relaxed),
            },
        }
    }
}

/// Latency distribution summary (microseconds; percentiles are the
/// upper bound of the matching power-of-two histogram bucket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: u64,
    /// Mean latency.
    pub mean_us: u64,
    /// Median (bucketed upper bound).
    pub p50_us: u64,
    /// 99th percentile (bucketed upper bound).
    pub p99_us: u64,
    /// Exact maximum observed.
    pub max_us: u64,
}

/// A point-in-time snapshot of the engine's service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Requests received (including rejected ones).
    pub requests: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an error other than `Busy`.
    pub errors: u64,
    /// Requests rejected because the queue was full.
    pub rejected_busy: u64,
    /// Requests answered straight from the result cache.
    pub cache_hits: u64,
    /// Requests that missed the cache.
    pub cache_misses: u64,
    /// Requests that joined another caller's in-flight computation.
    pub dedup_joins: u64,
    /// Scenario computations actually executed by workers.
    pub computations: u64,
    /// Jobs currently queued (not yet picked up by a worker).
    pub queue_depth: u64,
    /// Entries currently in the result cache.
    pub cache_entries: u64,
    /// Request-latency distribution.
    pub latency: LatencySummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_scaled() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn percentiles_bracket_the_samples() {
        let r = Registry::default();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 4000] {
            r.record_latency(us);
        }
        let m = r.snapshot(0);
        assert_eq!(m.latency.count, 10);
        assert_eq!(m.latency.max_us, 4000);
        assert!(m.latency.p50_us >= 50 && m.latency.p50_us <= 128);
        assert!(m.latency.p99_us >= 4000);
        assert!(m.latency.mean_us > 0);
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let r = Registry::default();
        r.requests.fetch_add(3, Relaxed);
        r.record_latency(77);
        let m = r.snapshot(2);
        let s = serde_json::to_string(&m).unwrap();
        let back: EngineMetrics = serde_json::from_str(&s).unwrap();
        assert_eq!(back, m);
    }
}
