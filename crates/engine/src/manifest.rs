//! Run provenance: a [`RunManifest`] attached to every engine response.
//!
//! The manifest makes any figure a client receives reproducible from
//! the response alone: the spec's content hash, the RNG seed, the
//! dataset scale, the crate version, and where the wall time went
//! stage by stage. Identical specs always yield identical manifests
//! modulo the stage timings (and which stages ran — a cache hit skips
//! the compute stages).

use crate::spec::{NetworkSel, Scale, ScenarioResult, ScenarioSpec};
use serde::{Deserialize, Serialize};

/// Wall time spent in one named pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (`validate`, `hash`, `cache_lookup`, `queue_wait`,
    /// `compute`, `dedup_wait`, `serialize`).
    pub stage: String,
    /// Duration in nanoseconds, clamped to ≥ 1 so a stage that ran is
    /// never reported as zero time.
    pub ns: u64,
}

/// Provenance record for one evaluated scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// FNV-1a content hash of the canonical spec, as 16 hex digits —
    /// the same value as the response's `hash` field.
    pub spec_hash: String,
    /// Base RNG seed the Monte Carlo trials derive their streams from.
    pub seed: u64,
    /// Dataset bundle scale the scenario ran against.
    pub scale: Scale,
    /// Network the scenario ran against.
    pub network: NetworkSel,
    /// Number of Monte Carlo trials requested.
    pub trials: usize,
    /// Monte Carlo kernel the scenario ran under (`per_point`,
    /// `crn_axis`, or `bitpar64`) — the *resolved* kernel, even when the
    /// spec left the choice to the engine. The kernels draw different
    /// RNG streams, so results are only comparable within one kernel.
    pub kernel: String,
    /// Version of `solarstorm-engine` that produced the result.
    pub engine_version: String,
    /// Pipeline stage at which the run was cancelled by its deadline,
    /// when it was (`queue_wait`, `compute`, `dedup_wait`). `None` for
    /// runs that completed. A manifest with this set describes a run
    /// whose partial work was discarded — its trials are **not**
    /// comparable to any completed run's.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cancelled_at_stage: Option<String>,
    /// Engine shard that served the request. `None` outside a sharded
    /// runtime. Like the stage timings, this is routing provenance, not
    /// identity: the same spec answered by different shards (e.g. after
    /// a busy spillover) is still the same run.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub shard: Option<u32>,
    /// Outcome of the hedged sibling-cache probe a sharded runtime runs
    /// on a shard-local cache miss: `Some(true)` — the answer came from
    /// a sibling shard's cache without recomputing; `Some(false)` — the
    /// probe missed and the shard computed locally. `None` — no probe
    /// ran (local cache hit, dedup join, or unsharded engine).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub hedge_hit: Option<bool>,
    /// Pure-hash home shard a supervised sharded runtime diverted this
    /// request away from — because the home was quarantined (or on
    /// probation and the probe ration was exhausted), or because a
    /// first attempt there failed and the retry on the ring successor
    /// answered. `None` when the request ran on its hash home. Routing
    /// provenance, not identity: rerouting changes *where* the
    /// deterministic computation ran, never its result.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub rerouted_from: Option<u32>,
    /// Supervision health state of the shard that served the request
    /// (`healthy`, `suspect`, `quarantined`, `probation`) at admission,
    /// recorded only when the request was rerouted or served by a
    /// not-plain-healthy shard. Provenance, not identity.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub health_state: Option<String>,
    /// Trace id (16 hex digits) of the request-scoped trace recorded
    /// for this run, when the request was traced. Like `shard`, this is
    /// provenance, not identity — the key to correlate the response
    /// with the flight recorder's span tree.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace_id: Option<String>,
    /// Trials an adaptive-precision run actually drew (summed across
    /// sweep points). `None` for fixed-budget runs. Like the stage
    /// timings this is outcome, not identity: `trials` above records
    /// what was *requested*, this what the stopping rule *spent*.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trials_used: Option<u64>,
    /// Realized confidence-interval half-width of an adaptive run (the
    /// widest point, for sweeps). `None` for fixed-budget runs.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub achieved_half_width: Option<f64>,
    /// Whether an adaptive run met its precision target everywhere
    /// within its trial budget. `None` for fixed-budget runs.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub precision_met: Option<bool>,
    /// Whether an adaptive run was cut short by its deadline and
    /// reports best-effort precision. Best-effort answers are never
    /// cached. `None` for fixed-budget runs.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub best_effort: Option<bool>,
    /// Per-stage wall-time breakdown, in execution order.
    pub stages: Vec<StageTiming>,
}

impl RunManifest {
    /// Builds the identity part of the manifest from a spec and its
    /// content hash; stages are pushed as the pipeline progresses.
    pub fn new(spec: &ScenarioSpec, hash: u64) -> RunManifest {
        RunManifest {
            spec_hash: format!("{hash:016x}"),
            seed: spec.mc.seed,
            scale: spec.scale,
            network: spec.network,
            trials: spec.mc.trials,
            kernel: spec.effective_kernel().name().to_string(),
            engine_version: env!("CARGO_PKG_VERSION").to_string(),
            cancelled_at_stage: None,
            shard: None,
            hedge_hit: None,
            rerouted_from: None,
            health_state: None,
            trace_id: None,
            trials_used: None,
            achieved_half_width: None,
            precision_met: None,
            best_effort: None,
            stages: Vec::new(),
        }
    }

    /// Stamps adaptive-precision provenance from the result the run
    /// produced; a no-op for fixed-budget results.
    pub fn note_precision(&mut self, result: &ScenarioResult) {
        if let Some(p) = result.precision_summary() {
            self.trials_used = Some(p.trials_used as u64);
            self.achieved_half_width = Some(p.achieved_half_width);
            self.precision_met = Some(p.met);
            self.best_effort = Some(p.best_effort);
        }
    }

    /// Marks the run as cancelled at `stage` (first mark wins).
    pub fn mark_cancelled(&mut self, stage: &'static str) {
        self.cancelled_at_stage
            .get_or_insert_with(|| stage.to_string());
    }

    /// Appends one stage duration (nanoseconds, clamped to ≥ 1).
    pub fn push_stage(&mut self, stage: &'static str, ns: u64) {
        self.stages.push(StageTiming {
            stage: stage.to_string(),
            ns: ns.max(1),
        });
    }

    /// The duration of a named stage, if it ran.
    pub fn stage_ns(&self, stage: &str) -> Option<u64> {
        self.stages.iter().find(|s| s.stage == stage).map(|s| s.ns)
    }

    /// Whether two manifests describe the same run identity — every
    /// field except the volatile outcome (stage timings, the
    /// cancellation marker, and the shard/hedge routing provenance): a
    /// run cancelled by its deadline, or answered by a different shard,
    /// still has the same identity as a completed run of the same spec.
    pub fn same_identity(&self, other: &RunManifest) -> bool {
        self.spec_hash == other.spec_hash
            && self.seed == other.seed
            && self.scale == other.scale
            && self.network == other.network
            && self.trials == other.trials
            && self.kernel == other.kernel
            && self.engine_version == other.engine_version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_ignores_stage_timings() {
        let spec = ScenarioSpec::default();
        let mut a = RunManifest::new(&spec, 0xabc);
        let mut b = RunManifest::new(&spec, 0xabc);
        a.push_stage("validate", 10);
        a.push_stage("compute", 999);
        b.push_stage("validate", 77);
        assert!(a.same_identity(&b));
        assert_ne!(a, b, "stage timings still distinguish the values");

        let c = RunManifest::new(&spec, 0xdef);
        assert!(!a.same_identity(&c));
    }

    #[test]
    fn manifests_name_the_kernel() {
        // The manifest records the *resolved* kernel: a default (Stats)
        // spec leaves the choice to the engine, which picks bitpar64.
        let default_stats = ScenarioSpec::default();
        let per_point = ScenarioSpec {
            kernel: Some(solarstorm_sim::Kernel::PerPoint),
            ..Default::default()
        };
        let crn = ScenarioSpec {
            kernel: Some(solarstorm_sim::Kernel::CrnAxis),
            ..Default::default()
        };
        let a = RunManifest::new(&default_stats, 0x1);
        let b = RunManifest::new(&per_point, 0x1);
        let c = RunManifest::new(&crn, 0x1);
        assert_eq!(a.kernel, "bitpar64");
        assert_eq!(b.kernel, "per_point");
        assert_eq!(c.kernel, "crn_axis");
        assert!(!a.same_identity(&b), "kernel is part of run identity");
    }

    #[test]
    fn cancellation_marker_round_trips_and_keeps_identity() {
        let spec = ScenarioSpec::default();
        let mut cancelled = RunManifest::new(&spec, 0x1);
        cancelled.mark_cancelled("compute");
        cancelled.mark_cancelled("dedup_wait"); // first mark wins
        assert_eq!(cancelled.cancelled_at_stage.as_deref(), Some("compute"));

        let completed = RunManifest::new(&spec, 0x1);
        assert!(cancelled.same_identity(&completed));

        let s = serde_json::to_string(&cancelled).unwrap();
        assert!(s.contains(r#""cancelled_at_stage":"compute""#), "{s}");
        let back: RunManifest = serde_json::from_str(&s).unwrap();
        assert_eq!(back, cancelled);
        // Completed runs don't carry the field on the wire at all, so
        // pre-deadline manifests still deserialize (serde default).
        let s = serde_json::to_string(&completed).unwrap();
        assert!(!s.contains("cancelled_at_stage"), "{s}");
    }

    #[test]
    fn shard_and_hedge_are_provenance_not_identity() {
        let spec = ScenarioSpec::default();
        let plain = RunManifest::new(&spec, 0x1);
        let mut routed = RunManifest::new(&spec, 0x1);
        routed.shard = Some(3);
        routed.hedge_hit = Some(true);
        routed.rerouted_from = Some(1);
        routed.health_state = Some("quarantined".to_string());
        routed.trace_id = Some("00000000000000ff".to_string());
        assert!(plain.same_identity(&routed));

        // Off the wire entirely when unset; round-trips when set.
        let s = serde_json::to_string(&plain).unwrap();
        assert!(
            !s.contains("shard")
                && !s.contains("hedge_hit")
                && !s.contains("trace_id")
                && !s.contains("rerouted_from")
                && !s.contains("health_state"),
            "{s}"
        );
        let s = serde_json::to_string(&routed).unwrap();
        assert!(s.contains(r#""shard":3"#), "{s}");
        assert!(s.contains(r#""hedge_hit":true"#), "{s}");
        assert!(s.contains(r#""rerouted_from":1"#), "{s}");
        assert!(s.contains(r#""health_state":"quarantined""#), "{s}");
        assert!(s.contains(r#""trace_id":"00000000000000ff""#), "{s}");
        let back: RunManifest = serde_json::from_str(&s).unwrap();
        assert_eq!(back, routed);
    }

    #[test]
    fn adaptive_provenance_is_outcome_not_identity() {
        let spec = ScenarioSpec::default();
        let plain = RunManifest::new(&spec, 0x1);
        let mut adaptive = RunManifest::new(&spec, 0x1);
        adaptive.note_precision(&ScenarioResult::Stats {
            stats: solarstorm_sim::TrialStats::from_metrics(&[1.0, 2.0], &[3.0, 4.0]),
            precision: Some(crate::spec::PrecisionReport {
                ci: 0.95,
                target_half_width: 0.5,
                trials_used: 4096,
                achieved_half_width: 0.41,
                met: true,
                best_effort: false,
            }),
        });
        assert_eq!(adaptive.trials_used, Some(4096));
        assert_eq!(adaptive.achieved_half_width, Some(0.41));
        assert_eq!(adaptive.precision_met, Some(true));
        assert_eq!(adaptive.best_effort, Some(false));
        assert!(
            plain.same_identity(&adaptive),
            "realized precision is outcome, not identity"
        );

        // Off the wire entirely for fixed-budget runs; round-trips.
        let s = serde_json::to_string(&plain).unwrap();
        assert!(
            !s.contains("trials_used") && !s.contains("achieved_half_width"),
            "{s}"
        );
        let s = serde_json::to_string(&adaptive).unwrap();
        assert!(s.contains(r#""trials_used":4096"#), "{s}");
        assert!(s.contains(r#""precision_met":true"#), "{s}");
        let back: RunManifest = serde_json::from_str(&s).unwrap();
        assert_eq!(back, adaptive);

        // A fixed-budget result leaves the manifest untouched.
        let mut untouched = RunManifest::new(&spec, 0x1);
        untouched.note_precision(&ScenarioResult::Slept { ms: 1 });
        assert_eq!(untouched, plain);
    }

    #[test]
    fn stages_clamp_to_nonzero_and_round_trip() {
        let mut m = RunManifest::new(&ScenarioSpec::default(), 1);
        m.push_stage("validate", 0);
        assert_eq!(m.stage_ns("validate"), Some(1));
        assert_eq!(m.stage_ns("compute"), None);

        let s = serde_json::to_string(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&s).unwrap();
        assert_eq!(back, m);
        assert_eq!(m.spec_hash, "0000000000000001");
    }
}
