//! `stormsim` — command-line driver for the solarstorm experiments.
//!
//! Every table and figure of the SIGCOMM 2021 paper can be regenerated
//! from here; figures print as ASCII or export as CSV.

use solarstorm::analysis::countries::{self, FailureState};
use solarstorm::analysis::{arctic, registry, robustness};
use solarstorm::analysis::{
    as_impact, economics, headline, maps, partition_report, risk, traffic_report,
};
use solarstorm::data::io;
use solarstorm::engine::{serve_stream, EngineConfig, MetricsServer, Scale, Server, ServerConfig};
use solarstorm::obs;
use solarstorm::shard::{ShardConfig, ShardedEngine};
use solarstorm::sim::cascade::{self, GridFailureModel};
use solarstorm::sim::isolation::{self, CouplingModel};
use solarstorm::sim::mitigation;
use solarstorm::sim::monte_carlo::run_outcomes;
use solarstorm::sim::monte_carlo::MonteCarloConfig;
use solarstorm::sim::repair::{self, RepairFleet, RepairStrategy};
use solarstorm::sim::timeline;
use solarstorm::PhysicsFailure;
use solarstorm::{Cme, Figure, LatitudeBandFailure, StormClass, Study};

const USAGE: &str = "\
stormsim — regenerate the experiments of 'Solar Superstorms: Planning for
an Internet Apocalypse' (SIGCOMM 2021)

USAGE: stormsim <command> [options]

COMMANDS
  fig3            latitude PDFs of population and submarine endpoints
  fig4a | fig4b   percentage of infrastructure above latitude thresholds
  fig5            cable-length CDFs
  fig6 | fig7     uniform repeater-failure sweeps (cables / nodes)
  fig8            S1/S2 latitude-banded failure grid
  fig9a | fig9b   AS reach and spread
  stats           headline statistics, paper vs measured
  countries       country-scale connectivity under S1 and S2
  systems         data-center + DNS resilience report
  mitigate        shutdown ablation per storm class (§5.2)
  cascade         power-grid coupling analysis (§5.5)
  repair          post-storm cable-ship campaign, per strategy (§3.2.2)
  partitions      surviving partitions + functional inventory (§5.3)
  traffic         traffic shifts and overloads (§5.5)
  satellite       LEO constellation storm impact (§3.3)
  asimpact        AS impact via synthesized AS-to-cable mapping (§4.4.1)
  map             ASCII world maps of infrastructure (Figs. 1-2)
  risk            extreme-impact risk per coming decade (§2.3)
  isolate         electrical-isolation ablation (§5.1)
  economics       economic-impact estimate (§1 anchor: $7B/day US)
  timeline        hour-by-hour failure accumulation during a storm
  robustness      min cable cuts between regions, intact vs after storm
  arctic          Arctic vs southern route tradeoff (§5.1)
  index           list every registered experiment
  export          dump the generated networks as JSON
  serve           NDJSON scenario-evaluation service over TCP
  batch           evaluate NDJSON scenario requests from stdin
  trace <spec.json>
                  evaluate one scenario spec with tracing forced on and
                  print its Chrome trace-event JSON (Perfetto-loadable)
  all             run everything

OPTIONS
  --full            paper-scale datasets (default: scaled test datasets)
  --trials N        Monte Carlo trials per point (default 10)
  --seed N          base RNG seed (default 42)
  --spacing KM      repeater spacing for fig6/fig7 (default 150)
  --threads N       simulation worker-pool threads (default: CPU cores;
                    overrides STORMSIM_THREADS)
  --csv             print figures as CSV instead of ASCII
  --log-level L     structured-log verbosity: off|error|warn|info|debug|trace
                    (overrides STORMSIM_LOG; STORMSIM_LOG_FILE=path adds an
                    NDJSON sink)

SERVICE OPTIONS (serve | batch | trace)
  --addr HOST:PORT  listen address for serve (default 127.0.0.1:7070)
  --shards N        engine shards behind the consistent-hash router
                    (default: CPU cores; overrides STORMSIM_SHARDS).
                    Each shard owns its own cache partition, flight
                    table, and slice of the worker/queue/cache budget.
  --workers N       worker threads, divided across shards
                    (default: CPU cores, capped at 8)
  --queue N         bounded work-queue capacity, divided across shards
                    (default 64)
  --cache N         result-cache entry cap, divided across shards;
                    0 disables (default 256)
  --full            paper-scale datasets (default: scaled test datasets)
  --threads N       simulation worker-pool threads (see above)
  --log-level L     structured-log verbosity (see above)
  --metrics-addr HOST:PORT
                    also serve Prometheus text metrics over HTTP (serve only);
                    the same endpoint serves the flight recorder's Chrome
                    trace export at /trace
  --deadline-ms MS  default per-request deadline for scenario requests that
                    do not set their own deadline_ms (default: none)
  --trace-slow-ms MS
                    always retain traces of requests slower than MS in the
                    flight recorder (default 250; 0 keeps only sampled,
                    errored, and explicitly traced requests)
  --breaker-window N
                    shard supervision: sliding window of per-shard request
                    outcomes fed to the circuit breaker (default 32;
                    overrides STORMSIM_BREAKER_WINDOW)
  --breaker-threshold N
                    failures within the window that quarantine a shard
                    (default 8, clamped to the window; overrides
                    STORMSIM_BREAKER_THRESHOLD)
  --quarantine-probes N
                    successful half-open probes required to re-admit a
                    respawned shard (default 4; overrides
                    STORMSIM_QUARANTINE_PROBES)
";

/// Every accepted command, checked before datasets are built so a typo
/// fails fast with usage instead of after seconds of generation.
const KNOWN_COMMANDS: &[&str] = &[
    "help",
    "--help",
    "-h",
    "index",
    "serve",
    "batch",
    "trace",
    "fig3",
    "fig4a",
    "fig4b",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9a",
    "fig9b",
    "stats",
    "countries",
    "systems",
    "mitigate",
    "cascade",
    "repair",
    "partitions",
    "traffic",
    "satellite",
    "asimpact",
    "map",
    "risk",
    "isolate",
    "economics",
    "timeline",
    "robustness",
    "arctic",
    "export",
    "all",
];

#[derive(Debug)]
struct Opts {
    full: bool,
    trials: usize,
    seed: u64,
    spacing: f64,
    csv: bool,
    log_level: Option<obs::Level>,
    threads: Option<usize>,
}

/// Parses `--log-level LEVEL`; the error carries the accepted names so
/// the one-line failure is self-explanatory.
fn parse_log_level(it: &mut std::slice::Iter<'_, String>) -> Result<obs::Level, String> {
    it.next()
        .ok_or_else(|| format!("--log-level needs a value ({})", obs::Level::NAMES))?
        .parse::<obs::Level>()
        .map_err(|e| format!("--log-level: {e}"))
}

/// Parses `--threads N`: a positive integer sizing the global simulation
/// worker pool. Zero and garbage are rejected so a typo fails fast with
/// usage instead of silently running single-threaded.
fn parse_threads(it: &mut std::slice::Iter<'_, String>) -> Result<usize, String> {
    let n: usize = it
        .next()
        .ok_or("--threads needs a value")?
        .parse()
        .map_err(|e| format!("--threads: {e}"))?;
    if n == 0 {
        return Err("--threads: must be at least 1".to_string());
    }
    Ok(n)
}

/// Parses `--shards N`: a positive integer sizing the sharded serving
/// runtime. Zero and garbage are rejected so a typo fails fast with
/// usage (exit 2) instead of silently serving unsharded.
fn parse_shards(it: &mut std::slice::Iter<'_, String>) -> Result<usize, String> {
    let n: usize = it
        .next()
        .ok_or("--shards needs a value")?
        .parse()
        .map_err(|e| format!("--shards: {e}"))?;
    if n == 0 {
        return Err("--shards: must be at least 1".to_string());
    }
    Ok(n)
}

/// The requested shard count: the `--shards` flag wins over the
/// `STORMSIM_SHARDS` environment variable; `None` means "one shard per
/// CPU core". Both sources reject zero and non-integers, exactly like
/// `--threads`/`STORMSIM_THREADS`.
fn resolve_shards(flag: Option<usize>) -> Result<Option<usize>, String> {
    if flag.is_some() {
        return Ok(flag);
    }
    let Ok(raw) = std::env::var("STORMSIM_SHARDS") else {
        return Ok(None);
    };
    let n: usize = raw
        .trim()
        .parse()
        .map_err(|e| format!("STORMSIM_SHARDS={raw}: {e}"))?;
    if n == 0 {
        return Err(format!("STORMSIM_SHARDS={raw}: must be at least 1"));
    }
    Ok(Some(n))
}

/// Parses one of the shard-supervision tuning flags (`--breaker-window`,
/// `--breaker-threshold`, `--quarantine-probes`): a positive integer.
/// Zero and garbage are rejected so a typo fails fast with usage
/// (exit 2) instead of silently disabling supervision.
fn parse_supervision(flag: &str, it: &mut std::slice::Iter<'_, String>) -> Result<usize, String> {
    let n: usize = it
        .next()
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))?;
    if n == 0 {
        return Err(format!("{flag}: must be at least 1"));
    }
    Ok(n)
}

/// Resolves one shard-supervision knob: the flag wins over its
/// `STORMSIM_*` environment variable, exactly like `--threads` /
/// `STORMSIM_THREADS`. Both sources reject zero and non-integers;
/// `None` keeps the breaker's built-in default.
fn resolve_supervision(flag: Option<usize>, env: &str) -> Result<Option<usize>, String> {
    if flag.is_some() {
        return Ok(flag);
    }
    let Ok(raw) = std::env::var(env) else {
        return Ok(None);
    };
    let n: usize = raw
        .trim()
        .parse()
        .map_err(|e| format!("{env}={raw}: {e}"))?;
    if n == 0 {
        return Err(format!("{env}={raw}: must be at least 1"));
    }
    Ok(Some(n))
}

/// The requested simulation pool width: the `--threads` flag wins over
/// the `STORMSIM_THREADS` environment variable; `None` means "size to
/// the machine". Both sources reject zero and non-integers.
fn resolve_threads(flag: Option<usize>) -> Result<Option<usize>, String> {
    if flag.is_some() {
        return Ok(flag);
    }
    let Ok(raw) = std::env::var("STORMSIM_THREADS") else {
        return Ok(None);
    };
    let n: usize = raw
        .trim()
        .parse()
        .map_err(|e| format!("STORMSIM_THREADS={raw}: {e}"))?;
    if n == 0 {
        return Err(format!("STORMSIM_THREADS={raw}: must be at least 1"));
    }
    Ok(Some(n))
}

/// Applies the resolved pool width before any simulation work builds the
/// process-wide pool. A refused resize (the pool already exists at a
/// different width) is not an error — the run proceeds — but it is
/// warned about, because silently ignoring `--threads` is worse.
fn setup_pool(flag: Option<usize>) -> Result<(), String> {
    if let Some(n) = resolve_threads(flag)? {
        if !solarstorm::sim::pool::set_global_workers(n) {
            eprintln!(
                "warning: --threads {n} ignored: simulation pool already \
                 running with {} workers",
                solarstorm::sim::pool::WorkerPool::global().workers()
            );
        }
    }
    Ok(())
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        full: false,
        trials: 10,
        seed: 42,
        spacing: 150.0,
        csv: false,
        log_level: None,
        threads: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => opts.full = true,
            "--csv" => opts.csv = true,
            "--log-level" => opts.log_level = Some(parse_log_level(&mut it)?),
            "--threads" => opts.threads = Some(parse_threads(&mut it)?),
            "--trials" => {
                opts.trials = it
                    .next()
                    .ok_or("--trials needs a value")?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?;
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--spacing" => {
                opts.spacing = it
                    .next()
                    .ok_or("--spacing needs a value")?
                    .parse()
                    .map_err(|e| format!("--spacing: {e}"))?;
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

/// Options for the `serve` and `batch` service frontends.
#[derive(Debug)]
struct ServiceOpts {
    addr: String,
    workers: usize,
    queue: usize,
    cache: usize,
    full: bool,
    log_level: Option<obs::Level>,
    metrics_addr: Option<String>,
    threads: Option<usize>,
    deadline_ms: Option<u64>,
    shards: Option<usize>,
    trace_slow_ms: Option<u64>,
    breaker_window: Option<usize>,
    breaker_threshold: Option<usize>,
    quarantine_probes: Option<usize>,
}

fn parse_service_opts(args: &[String]) -> Result<ServiceOpts, String> {
    let defaults = EngineConfig::default();
    let mut opts = ServiceOpts {
        addr: "127.0.0.1:7070".to_string(),
        workers: defaults.workers,
        queue: defaults.queue_cap,
        cache: defaults.cache_cap,
        full: false,
        log_level: None,
        metrics_addr: None,
        threads: None,
        deadline_ms: None,
        shards: None,
        trace_slow_ms: None,
        breaker_window: None,
        breaker_threshold: None,
        quarantine_probes: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => opts.full = true,
            "--log-level" => opts.log_level = Some(parse_log_level(&mut it)?),
            "--threads" => opts.threads = Some(parse_threads(&mut it)?),
            "--shards" => opts.shards = Some(parse_shards(&mut it)?),
            "--breaker-window" => {
                opts.breaker_window = Some(parse_supervision("--breaker-window", &mut it)?);
            }
            "--breaker-threshold" => {
                opts.breaker_threshold = Some(parse_supervision("--breaker-threshold", &mut it)?);
            }
            "--quarantine-probes" => {
                opts.quarantine_probes = Some(parse_supervision("--quarantine-probes", &mut it)?);
            }
            "--addr" => {
                opts.addr = it.next().ok_or("--addr needs a value")?.clone();
            }
            "--metrics-addr" => {
                opts.metrics_addr = Some(it.next().ok_or("--metrics-addr needs a value")?.clone());
            }
            "--deadline-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--deadline-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                if ms == 0 {
                    return Err("--deadline-ms: must be at least 1".to_string());
                }
                opts.deadline_ms = Some(ms);
            }
            "--trace-slow-ms" => {
                // 0 is meaningful here (disable the slow-always-retain
                // rule), unlike --deadline-ms.
                let ms: u64 = it
                    .next()
                    .ok_or("--trace-slow-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("--trace-slow-ms: {e}"))?;
                opts.trace_slow_ms = Some(ms);
            }
            "--workers" => {
                opts.workers = it
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue" => {
                opts.queue = it
                    .next()
                    .ok_or("--queue needs a value")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?;
            }
            "--cache" => {
                opts.cache = it
                    .next()
                    .ok_or("--cache needs a value")?
                    .parse()
                    .map_err(|e| format!("--cache: {e}"))?;
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

fn engine_config(opts: &ServiceOpts) -> EngineConfig {
    EngineConfig {
        workers: opts.workers,
        queue_cap: opts.queue,
        cache_cap: opts.cache,
        prewarm: Some(if opts.full { Scale::Paper } else { Scale::Test }),
        default_deadline_ms: opts.deadline_ms,
        ..Default::default()
    }
}

/// The sharded-runtime config: the total engine budget from the service
/// flags, divided across the resolved shard count (`--shards` over
/// `STORMSIM_SHARDS`, already folded into `opts.shards` by `main`;
/// `None` means one shard per CPU core).
fn shard_runtime_config(opts: &ServiceOpts) -> ShardConfig {
    let mut cfg = ShardConfig {
        engine: engine_config(opts),
        ..Default::default()
    };
    if let Some(n) = opts.shards {
        cfg.shards = n;
    }
    if let Some(w) = opts.breaker_window {
        cfg.breaker.window = w;
    }
    if let Some(t) = opts.breaker_threshold {
        cfg.breaker.threshold = t;
    }
    if let Some(p) = opts.quarantine_probes {
        cfg.breaker.probes = u32::try_from(p).unwrap_or(u32::MAX);
    }
    cfg
}

/// Applies the flight-recorder flags to the process-global recorder
/// before any requests run.
fn apply_recorder_opts(opts: &ServiceOpts) {
    if let Some(ms) = opts.trace_slow_ms {
        obs::recorder().set_slow_threshold_ms(ms);
    }
}

/// `stormsim serve`: NDJSON scenario service over TCP, thread per
/// connection, until killed.
fn run_serve(opts: &ServiceOpts) -> Result<(), Box<dyn std::error::Error>> {
    apply_recorder_opts(opts);
    eprintln!(
        "prewarming {} datasets…",
        if opts.full {
            "paper-scale"
        } else {
            "test-scale"
        }
    );
    let runtime = std::sync::Arc::new(ShardedEngine::new(shard_runtime_config(opts)));
    obs::event!(
        obs::Level::Info,
        "serve_start",
        shards = runtime.shard_count()
    );
    let server = Server::bind(
        &opts.addr,
        std::sync::Arc::clone(&runtime),
        ServerConfig::default(),
    )?;
    if let Some(metrics_addr) = &opts.metrics_addr {
        let metrics = MetricsServer::bind(metrics_addr, std::sync::Arc::clone(&runtime))?;
        eprintln!(
            "stormsim metrics (Prometheus text) on http://{}/metrics",
            metrics.local_addr()?
        );
        std::thread::Builder::new()
            .name("storm-metrics-accept".into())
            .spawn(move || metrics.run())?;
    }
    eprintln!(
        "stormsim serve listening on {} ({} shards, {} workers, queue {}, cache {})",
        server.local_addr()?,
        runtime.shard_count(),
        opts.workers,
        opts.queue,
        opts.cache
    );
    server.run()?;
    Ok(())
}

/// `stormsim batch`: one NDJSON request per stdin line, one response
/// per stdout line; a metrics snapshot goes to stderr at EOF.
///
/// Runs the same hardened protocol loop as the TCP server, so hostile
/// stdin — invalid UTF-8, NUL bytes, overlong lines — gets one
/// well-formed JSON error response instead of killing the run.
fn run_batch(opts: &ServiceOpts) -> Result<(), Box<dyn std::error::Error>> {
    apply_recorder_opts(opts);
    eprintln!(
        "prewarming {} datasets…",
        if opts.full {
            "paper-scale"
        } else {
            "test-scale"
        }
    );
    let runtime = ShardedEngine::new(shard_runtime_config(opts));
    obs::event!(
        obs::Level::Info,
        "batch_start",
        shards = runtime.shard_count()
    );
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_stream(
        &runtime,
        stdin.lock(),
        stdout.lock(),
        &ServerConfig::default(),
    );
    runtime.shutdown();
    obs::flush();
    eprintln!(
        "{}",
        serde_json::to_string_pretty(&runtime.metrics().to_value()?)?
    );
    Ok(())
}

/// `stormsim trace <spec.json>`: evaluates one scenario spec with
/// tracing forced on and prints the request's span tree as Chrome
/// trace-event JSON on stdout — pipe it to a file and load it in
/// Perfetto or `chrome://tracing`. A one-line summary goes to stderr.
fn run_trace(path: &str, opts: &ServiceOpts) -> Result<(), Box<dyn std::error::Error>> {
    apply_recorder_opts(opts);
    let raw = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut spec: solarstorm::engine::ScenarioSpec =
        serde_json::from_str(&raw).map_err(|e| format!("{path}: {e}"))?;
    spec.trace = true;
    eprintln!(
        "prewarming {} datasets…",
        if opts.full {
            "paper-scale"
        } else {
            "test-scale"
        }
    );
    let runtime = ShardedEngine::new(shard_runtime_config(opts));
    let handle = obs::TraceHandle::begin("request", None);
    let out = runtime.evaluate_full(&spec);
    let done = handle.finish(out.as_ref().err().map(|f| f.error.code().to_string()));
    runtime.shutdown();
    obs::flush();
    let trace_id = done.trace_id_hex();
    let dur_ms = done.dur_ns as f64 / 1e6;
    let span_count = done.spans.len();
    println!("{}", obs::chrome_trace_json(&[std::sync::Arc::new(done)]));
    match &out {
        Ok(eval) => eprintln!(
            "trace {trace_id}: ok in {dur_ms:.2} ms, {span_count} spans, \
             shard {}, cached {}",
            eval.manifest
                .shard
                .map_or("none".to_string(), |s| s.to_string()),
            eval.cached
        ),
        Err(report) => eprintln!(
            "trace {trace_id}: {} in {dur_ms:.2} ms, {span_count} spans",
            report.error.code()
        ),
    }
    out.map(|_| ())
        .map_err(|report| report.error.to_string().into())
}

/// Initializes structured logging. The `--log-level` flag wins over the
/// `STORMSIM_LOG` environment variable; both fail fast on a bad value
/// (one-line error + usage, exit 2) instead of running for minutes with
/// logging silently misconfigured.
fn setup_obs(flag: Option<obs::Level>) -> Result<(), String> {
    match flag {
        Some(level) => obs::init_with_sinks(level),
        None => obs::init_from_env().map(|_| ()),
    }
}

fn show(fig: &Figure, csv: bool) {
    if csv {
        print!("{}", fig.to_csv());
    } else {
        println!("{}", fig.render_ascii(78, 20));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    if !KNOWN_COMMANDS.contains(&command.as_str()) {
        eprintln!("unknown command {command}\n");
        eprint!("{USAGE}");
        std::process::exit(2);
    }
    if command == "serve" || command == "batch" || command == "trace" {
        // `trace` takes its scenario spec file as the first positional
        // argument; the remaining flags parse as service options.
        let mut spec_path = None;
        let rest = if command == "trace" {
            match args.get(1) {
                Some(p) if !p.starts_with("--") => {
                    spec_path = Some(p.clone());
                    &args[2..]
                }
                _ => {
                    eprintln!("error: trace needs a scenario spec file\n");
                    eprint!("{USAGE}");
                    std::process::exit(2);
                }
            }
        } else {
            &args[1..]
        };
        let mut sopts = match parse_service_opts(rest) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}\n");
                eprint!("{USAGE}");
                std::process::exit(2);
            }
        };
        if let Err(e) = setup_obs(sopts.log_level) {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
        if let Err(e) = setup_pool(sopts.threads) {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
        // Fold STORMSIM_SHARDS into the flag slot, rejecting garbage and
        // zero with usage exactly like --threads/STORMSIM_THREADS.
        match resolve_shards(sopts.shards) {
            Ok(resolved) => sopts.shards = resolved,
            Err(e) => {
                eprintln!("error: {e}\n");
                eprint!("{USAGE}");
                std::process::exit(2);
            }
        }
        // Same folding for the supervision knobs.
        let supervision = [
            (&mut sopts.breaker_window, "STORMSIM_BREAKER_WINDOW"),
            (&mut sopts.breaker_threshold, "STORMSIM_BREAKER_THRESHOLD"),
            (&mut sopts.quarantine_probes, "STORMSIM_QUARANTINE_PROBES"),
        ];
        for (slot, env) in supervision {
            match resolve_supervision(*slot, env) {
                Ok(resolved) => *slot = resolved,
                Err(e) => {
                    eprintln!("error: {e}\n");
                    eprint!("{USAGE}");
                    std::process::exit(2);
                }
            }
        }
        let out = match command.as_str() {
            "serve" => run_serve(&sopts),
            "batch" => run_batch(&sopts),
            _ => run_trace(spec_path.as_deref().unwrap_or_default(), &sopts),
        };
        if let Err(e) = out {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    let opts = match parse_opts(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = setup_obs(opts.log_level) {
        eprintln!("error: {e}\n");
        eprint!("{USAGE}");
        std::process::exit(2);
    }
    if let Err(e) = setup_pool(opts.threads) {
        eprintln!("error: {e}\n");
        eprint!("{USAGE}");
        std::process::exit(2);
    }
    let out = run(&command, &opts);
    obs::flush();
    if let Err(e) = out {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(command: &str, opts: &Opts) -> Result<(), Box<dyn std::error::Error>> {
    if command == "help" || command == "--help" || command == "-h" {
        print!("{USAGE}");
        return Ok(());
    }
    if command == "index" {
        print!("{}", registry::render_index());
        return Ok(());
    }
    eprintln!(
        "building {} datasets…",
        if opts.full {
            "paper-scale"
        } else {
            "test-scale"
        }
    );
    let mut study = if opts.full {
        Study::paper_scale()?
    } else {
        Study::test_scale()?
    };
    study.trials = opts.trials;
    study.seed = opts.seed;

    match command {
        "fig3" => show(&study.fig3(), opts.csv),
        "fig4a" => show(&study.fig4a(), opts.csv),
        "fig4b" => show(&study.fig4b(), opts.csv),
        "fig5" => show(&study.fig5(), opts.csv),
        "fig6" => show(&study.fig6(opts.spacing)?, opts.csv),
        "fig7" => show(&study.fig7(opts.spacing)?, opts.csv),
        "fig8" => show(&study.fig8()?, opts.csv),
        "fig9a" => show(&study.fig9a(), opts.csv),
        "fig9b" => show(&study.fig9b(), opts.csv),
        "stats" => print!("{}", headline::render_table(&study.headline())),
        "countries" => {
            for state in [FailureState::S2, FailureState::S1] {
                let reports = study.countries(state)?;
                println!("{}", countries::render_table(state, &reports));
            }
        }
        "systems" => print!("{}", study.systems_report()),
        "mitigate" => {
            let net = &study.datasets().submarine;
            let cfg = MonteCarloConfig {
                spacing_km: opts.spacing,
                trials: opts.trials,
                seed: opts.seed,
                ..Default::default()
            };
            println!(
                "{:<10} {:>16} {:>16} {:>12} {:>14}",
                "class", "powered fail%", "shutdown fail%", "saved pts", "lead time h"
            );
            for class in StormClass::ALL {
                let out = mitigation::shutdown_ablation(net, class, &cfg)?;
                let cme = Cme::typical(class);
                println!(
                    "{:<10} {:>16.1} {:>16.1} {:>12.1} {:>14.1}",
                    format!("{class:?}"),
                    out.powered.mean_cables_failed_pct,
                    out.shutdown.mean_cables_failed_pct,
                    out.cables_saved_pct,
                    cme.lead_time_hours(1.0),
                );
            }
        }
        "cascade" => {
            let net = &study.datasets().submarine;
            let cfg = MonteCarloConfig {
                spacing_km: opts.spacing,
                trials: opts.trials,
                seed: opts.seed,
                ..Default::default()
            };
            for (label, grid) in [
                ("moderate", GridFailureModel::moderate()),
                ("severe", GridFailureModel::severe()),
            ] {
                let s = cascade::run_coupled(net, &LatitudeBandFailure::s2(), &grid, &cfg)?;
                println!(
                    "{label}: cables {:.1}% -> {:.1}% with grid coupling; stations dark {:.1}%",
                    s.mean_cables_failed_repeaters_pct,
                    s.mean_cables_failed_coupled_pct,
                    s.mean_stations_dark_pct
                );
            }
        }
        "repair" => {
            let net = &study.datasets().submarine;
            let cfg = study.mc_config(opts.spacing);
            let model = PhysicsFailure::calibrated(StormClass::Extreme);
            let outcome = &run_outcomes(net, &model, &cfg)?[0];
            println!(
                "Carrington-class impact: {} of {} cables down. Fleet: {} ships.",
                outcome.dead.iter().filter(|d| **d).count(),
                net.cable_count(),
                RepairFleet::default().ships
            );
            for strategy in RepairStrategy::ALL {
                let out = repair::simulate_repairs(
                    net,
                    &outcome.dead,
                    &RepairFleet::default(),
                    strategy,
                )?;
                println!(
                    "{:<22} 50% cables {:>6.0} d; 95% nodes {:>6.0} d; complete {:>6.0} d",
                    out.strategy.label(),
                    out.days_to_50pct_cables,
                    out.days_to_95pct_nodes,
                    out.total_days
                );
            }
        }
        "partitions" => {
            for state in [FailureState::S2, FailureState::S1] {
                let report = partition_report::reproduce(
                    study.datasets(),
                    &state.model(),
                    &study.mc_config(opts.spacing),
                    3,
                )?;
                println!("{}", partition_report::render_table(&report));
            }
        }
        "traffic" => {
            for state in [FailureState::S2, FailureState::S1] {
                let report = traffic_report::reproduce(
                    study.datasets(),
                    &state.model(),
                    &study.mc_config(opts.spacing),
                )?;
                println!("{}", traffic_report::render_table(&report));
            }
        }
        "satellite" => {
            println!(
                "{:<10} {:>12} {:>12} {:>12}  service lost at",
                "class", "total lost", "electronics", "decay"
            );
            for class in StormClass::ALL {
                let impact = study.satellite_impact(class)?;
                let lost: Vec<String> = impact
                    .service_by_latitude
                    .iter()
                    .filter(|(_, ok)| !ok)
                    .map(|(lat, _)| format!("{lat:.0}°"))
                    .collect();
                println!(
                    "{:<10} {:>11.1}% {:>11.1}% {:>11.1}%  {}",
                    format!("{class:?}"),
                    100.0 * impact.total_lost,
                    100.0 * impact.electronics_lost,
                    100.0 * impact.decay_lost,
                    if lost.is_empty() {
                        "none".to_string()
                    } else {
                        lost.join(" ")
                    }
                );
            }
        }
        "asimpact" => {
            for state in [FailureState::S2, FailureState::S1] {
                let report = as_impact::reproduce(
                    study.datasets(),
                    &state.model(),
                    &study.mc_config(opts.spacing),
                )?;
                println!("{}", as_impact::render_table(&report));
            }
        }
        "map" => {
            println!(
                "{}",
                maps::fig1_infrastructure_map(study.datasets(), 110, 32)
            );
            println!("{}", maps::fig2_datacenter_map(110, 32));
        }
        "risk" => {
            let risks = risk::decade_risks(2026.0, 6, 2_000, opts.seed)?;
            print!("{}", risk::render_table(&risks));
        }
        "isolate" => {
            for state in [FailureState::S2, FailureState::S1] {
                let out = isolation::isolation_ablation(
                    &study.datasets().submarine,
                    &state.model(),
                    &CouplingModel::default(),
                    &study.mc_config(opts.spacing),
                )?;
                println!(
                    "{}: isolated {:.1}% failed | without isolation {:.1}% failed | {:.1} cascades/trial",
                    state.label(),
                    out.isolated_cables_failed_pct,
                    out.unisolated_cables_failed_pct,
                    out.mean_cascades
                );
            }
        }
        "economics" => {
            for state in [FailureState::S2, FailureState::S1] {
                let e = economics::reproduce(
                    study.datasets(),
                    &state.model(),
                    &study.mc_config(opts.spacing),
                )?;
                println!("{}", economics::render_table(&e));
            }
        }
        "timeline" => {
            for class in [
                StormClass::Moderate,
                StormClass::Severe,
                StormClass::Extreme,
            ] {
                let tl = timeline::storm_timeline(
                    &study.datasets().submarine,
                    class,
                    opts.spacing,
                    opts.trials,
                    opts.seed,
                )?;
                println!("\n{class:?} storm: hour | Dst (nT) | cables failed %");
                for p in tl.iter().step_by(6) {
                    println!(
                        "  {:>6.1} | {:>8.0} | {:>6.1}",
                        p.hour, p.dst_nt, p.cables_failed_pct
                    );
                }
            }
        }
        "arctic" => {
            print!("{}", arctic::render_table(&arctic::reproduce()?));
        }
        "robustness" => {
            for state in [FailureState::S2, FailureState::S1] {
                let rows = robustness::reproduce(
                    study.datasets(),
                    &state.model(),
                    &study.mc_config(opts.spacing),
                    &robustness::paper_pairs(),
                )?;
                println!("{}:\n{}", state.label(), robustness::render_table(&rows));
            }
        }
        "export" => {
            let d = study.datasets();
            for (name, net) in [
                ("submarine.json", &d.submarine),
                ("intertubes.json", &d.intertubes),
                ("itu.json", &d.itu),
            ] {
                std::fs::write(name, io::network_to_json(net)?)?;
                eprintln!("wrote {name}");
            }
        }
        "all" => {
            print!("{}", headline::render_table(&study.headline()));
            println!();
            for fig in [study.fig3(), study.fig4a(), study.fig4b(), study.fig5()] {
                show(&fig, opts.csv);
            }
            for spacing in [50.0, 100.0, 150.0] {
                show(&study.fig6(spacing)?, opts.csv);
                show(&study.fig7(spacing)?, opts.csv);
            }
            show(&study.fig8()?, opts.csv);
            show(&study.fig9a(), opts.csv);
            show(&study.fig9b(), opts.csv);
            for state in [FailureState::S2, FailureState::S1] {
                let reports = study.countries(state)?;
                println!("{}", countries::render_table(state, &reports));
            }
            print!("{}", study.systems_report());
        }
        other => {
            eprintln!("unknown command {other}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_parse() {
        let o = parse_opts(&[]).unwrap();
        assert!(!o.full);
        assert!(!o.csv);
        assert_eq!(o.trials, 10);
        assert_eq!(o.seed, 42);
        assert_eq!(o.spacing, 150.0);
    }

    #[test]
    fn all_flags_parse() {
        let o = parse_opts(&args(&[
            "--full",
            "--csv",
            "--trials",
            "7",
            "--seed",
            "99",
            "--spacing",
            "50",
        ]))
        .unwrap();
        assert!(o.full);
        assert!(o.csv);
        assert_eq!(o.trials, 7);
        assert_eq!(o.seed, 99);
        assert_eq!(o.spacing, 50.0);
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(parse_opts(&args(&["--bogus"])).is_err());
        assert!(parse_opts(&args(&["--trials"])).is_err());
        assert!(parse_opts(&args(&["--trials", "abc"])).is_err());
        assert!(parse_opts(&args(&["--spacing", "x"])).is_err());
    }

    #[test]
    fn log_level_parses_on_every_frontend() {
        let o = parse_opts(&args(&["--log-level", "debug"])).unwrap();
        assert_eq!(o.log_level, Some(obs::Level::Debug));
        assert!(parse_opts(&[]).unwrap().log_level.is_none());

        let s = parse_service_opts(&args(&["--log-level", "trace"])).unwrap();
        assert_eq!(s.log_level, Some(obs::Level::Trace));

        let err = parse_opts(&args(&["--log-level", "loud"])).unwrap_err();
        assert!(err.contains("--log-level"), "{err}");
        assert!(err.contains("loud"), "{err}");
        assert!(err.contains("trace"), "{err}");
        assert!(parse_opts(&args(&["--log-level"])).is_err());
        assert!(parse_service_opts(&args(&["--log-level", "x"])).is_err());
    }

    #[test]
    fn threads_parse_on_every_frontend() {
        let o = parse_opts(&args(&["--threads", "4"])).unwrap();
        assert_eq!(o.threads, Some(4));
        assert!(parse_opts(&[]).unwrap().threads.is_none());

        let s = parse_service_opts(&args(&["--threads", "2"])).unwrap();
        assert_eq!(s.threads, Some(2));
        assert!(parse_service_opts(&[]).unwrap().threads.is_none());

        for bad in [
            &["--threads"][..],
            &["--threads", "0"],
            &["--threads", "abc"],
            &["--threads", "-3"],
            &["--threads", "1.5"],
        ] {
            let err = parse_opts(&args(bad)).unwrap_err();
            assert!(err.contains("--threads"), "{err}");
            assert!(parse_service_opts(&args(bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn threads_env_var_is_validated_and_flag_wins() {
        // The flag short-circuits: the environment is not even read.
        std::env::set_var("STORMSIM_THREADS", "garbage");
        assert_eq!(resolve_threads(Some(3)).unwrap(), Some(3));
        let err = resolve_threads(None).unwrap_err();
        assert!(err.contains("STORMSIM_THREADS"), "{err}");

        std::env::set_var("STORMSIM_THREADS", "0");
        let err = resolve_threads(None).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");

        std::env::set_var("STORMSIM_THREADS", "6");
        assert_eq!(resolve_threads(None).unwrap(), Some(6));

        std::env::remove_var("STORMSIM_THREADS");
        assert_eq!(resolve_threads(None).unwrap(), None);
    }

    #[test]
    fn deadline_ms_parses_and_rejects_zero() {
        let s = parse_service_opts(&args(&["--deadline-ms", "2500"])).unwrap();
        assert_eq!(s.deadline_ms, Some(2500));
        assert_eq!(engine_config(&s).default_deadline_ms, Some(2500));

        let s = parse_service_opts(&[]).unwrap();
        assert!(s.deadline_ms.is_none());
        assert!(engine_config(&s).default_deadline_ms.is_none());

        assert!(parse_service_opts(&args(&["--deadline-ms"])).is_err());
        assert!(parse_service_opts(&args(&["--deadline-ms", "0"])).is_err());
        assert!(parse_service_opts(&args(&["--deadline-ms", "soon"])).is_err());
    }

    #[test]
    fn shards_parse_and_reject_garbage() {
        let s = parse_service_opts(&args(&["--shards", "4"])).unwrap();
        assert_eq!(s.shards, Some(4));
        assert!(parse_service_opts(&[]).unwrap().shards.is_none());

        for bad in [
            &["--shards"][..],
            &["--shards", "0"],
            &["--shards", "abc"],
            &["--shards", "-2"],
            &["--shards", "2.5"],
        ] {
            let err = parse_service_opts(&args(bad)).unwrap_err();
            assert!(err.contains("--shards"), "{err}");
        }
    }

    #[test]
    fn shards_env_var_is_validated_and_flag_wins() {
        // The flag short-circuits: the environment is not even read.
        std::env::set_var("STORMSIM_SHARDS", "junk");
        assert_eq!(resolve_shards(Some(2)).unwrap(), Some(2));
        let err = resolve_shards(None).unwrap_err();
        assert!(err.contains("STORMSIM_SHARDS"), "{err}");

        std::env::set_var("STORMSIM_SHARDS", "0");
        let err = resolve_shards(None).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");

        std::env::set_var("STORMSIM_SHARDS", "3");
        assert_eq!(resolve_shards(None).unwrap(), Some(3));

        std::env::remove_var("STORMSIM_SHARDS");
        assert_eq!(resolve_shards(None).unwrap(), None);
    }

    #[test]
    fn supervision_flags_parse_and_reject_garbage() {
        let s = parse_service_opts(&args(&[
            "--breaker-window",
            "16",
            "--breaker-threshold",
            "5",
            "--quarantine-probes",
            "2",
        ]))
        .unwrap();
        assert_eq!(s.breaker_window, Some(16));
        assert_eq!(s.breaker_threshold, Some(5));
        assert_eq!(s.quarantine_probes, Some(2));

        let s = parse_service_opts(&[]).unwrap();
        assert!(s.breaker_window.is_none());
        assert!(s.breaker_threshold.is_none());
        assert!(s.quarantine_probes.is_none());

        for flag in [
            "--breaker-window",
            "--breaker-threshold",
            "--quarantine-probes",
        ] {
            for bad in [&[flag][..], &[flag, "0"], &[flag, "abc"], &[flag, "-2"]] {
                let err = parse_service_opts(&args(bad)).unwrap_err();
                assert!(err.contains(flag), "{err}");
            }
        }
    }

    #[test]
    fn supervision_env_vars_are_validated_and_flags_win() {
        // The flag short-circuits: the environment is not even read.
        std::env::set_var("STORMSIM_BREAKER_WINDOW", "junk");
        assert_eq!(
            resolve_supervision(Some(9), "STORMSIM_BREAKER_WINDOW").unwrap(),
            Some(9)
        );
        let err = resolve_supervision(None, "STORMSIM_BREAKER_WINDOW").unwrap_err();
        assert!(err.contains("STORMSIM_BREAKER_WINDOW"), "{err}");

        std::env::set_var("STORMSIM_BREAKER_WINDOW", "0");
        let err = resolve_supervision(None, "STORMSIM_BREAKER_WINDOW").unwrap_err();
        assert!(err.contains("at least 1"), "{err}");

        std::env::set_var("STORMSIM_BREAKER_WINDOW", "48");
        assert_eq!(
            resolve_supervision(None, "STORMSIM_BREAKER_WINDOW").unwrap(),
            Some(48)
        );

        std::env::remove_var("STORMSIM_BREAKER_WINDOW");
        assert_eq!(
            resolve_supervision(None, "STORMSIM_BREAKER_WINDOW").unwrap(),
            None
        );
    }

    #[test]
    fn shard_runtime_config_carries_breaker_tuning() {
        let s = parse_service_opts(&args(&[
            "--breaker-window",
            "16",
            "--breaker-threshold",
            "5",
            "--quarantine-probes",
            "2",
        ]))
        .unwrap();
        let cfg = shard_runtime_config(&s);
        assert_eq!(cfg.breaker.window, 16);
        assert_eq!(cfg.breaker.threshold, 5);
        assert_eq!(cfg.breaker.probes, 2);

        // Unset flags keep the breaker defaults.
        let s = parse_service_opts(&[]).unwrap();
        let cfg = shard_runtime_config(&s);
        let defaults = solarstorm::shard::BreakerConfig::default();
        assert_eq!(cfg.breaker.window, defaults.window);
        assert_eq!(cfg.breaker.threshold, defaults.threshold);
        assert_eq!(cfg.breaker.probes, defaults.probes);
    }

    #[test]
    fn shard_runtime_config_carries_the_count_and_total_budget() {
        let s = parse_service_opts(&args(&[
            "--shards",
            "3",
            "--workers",
            "6",
            "--queue",
            "9",
            "--cache",
            "12",
        ]))
        .unwrap();
        let cfg = shard_runtime_config(&s);
        assert_eq!(cfg.shards, 3);
        // The *total* budget goes in; ShardedEngine divides it.
        assert_eq!(cfg.engine.workers, 6);
        assert_eq!(cfg.engine.queue_cap, 9);
        assert_eq!(cfg.engine.cache_cap, 12);

        // Without --shards the count defaults to the core count.
        let s = parse_service_opts(&[]).unwrap();
        let cfg = shard_runtime_config(&s);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(cfg.shards, cores);
    }

    #[test]
    fn trace_slow_ms_parses_and_zero_disables() {
        let s = parse_service_opts(&args(&["--trace-slow-ms", "100"])).unwrap();
        assert_eq!(s.trace_slow_ms, Some(100));
        // 0 is accepted: it disables the slow-always-retain rule.
        let s = parse_service_opts(&args(&["--trace-slow-ms", "0"])).unwrap();
        assert_eq!(s.trace_slow_ms, Some(0));
        assert!(parse_service_opts(&[]).unwrap().trace_slow_ms.is_none());
        assert!(parse_service_opts(&args(&["--trace-slow-ms"])).is_err());
        assert!(parse_service_opts(&args(&["--trace-slow-ms", "fast"])).is_err());
    }

    #[test]
    fn metrics_addr_parses() {
        let s = parse_service_opts(&args(&["--metrics-addr", "127.0.0.1:9184"])).unwrap();
        assert_eq!(s.metrics_addr.as_deref(), Some("127.0.0.1:9184"));
        assert!(parse_service_opts(&[]).unwrap().metrics_addr.is_none());
        assert!(parse_service_opts(&args(&["--metrics-addr"])).is_err());
    }
}
