//! Black-box tests of the `stormsim` binary's argument handling: every
//! malformed invocation must fail fast with a one-line error plus usage
//! on stderr and a nonzero exit code — before any dataset is built.

use std::process::{Command, Output};

fn stormsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_stormsim"))
        .args(args)
        .output()
        .expect("spawn stormsim")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn no_command_prints_usage_and_exits_2() {
    let out = stormsim(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("USAGE: stormsim"), "{}", stderr(&out));
}

#[test]
fn unknown_command_fails_fast_with_usage() {
    let out = stormsim(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown command frobnicate"), "{err}");
    assert!(err.contains("USAGE: stormsim"), "{err}");
    // Fail-fast: the dataset-build banner must not have printed.
    assert!(
        !err.contains("building"),
        "built datasets for a typo: {err}"
    );
}

#[test]
fn bad_option_value_is_rejected() {
    let out = stormsim(&["fig3", "--trials", "abc"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("--trials"), "{err}");
    assert!(err.contains("USAGE: stormsim"), "{err}");
}

#[test]
fn unknown_option_is_rejected() {
    let out = stormsim(&["fig3", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("unknown option --bogus"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn service_commands_reject_bad_options() {
    let out = stormsim(&["serve", "--workers", "many"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--workers"), "{}", stderr(&out));

    let out = stormsim(&["batch", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("unknown option --bogus"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn bad_log_level_fails_fast_with_usage() {
    for cmd in [
        &["fig3", "--log-level", "loud"][..],
        &["batch", "--log-level", "loud"][..],
        &["serve", "--log-level", "loud"][..],
    ] {
        let out = stormsim(cmd);
        assert_eq!(out.status.code(), Some(2), "{cmd:?}");
        let err = stderr(&out);
        assert!(err.contains("unknown log level"), "{cmd:?}: {err}");
        assert!(err.contains("off|error|warn|info|debug|trace"), "{err}");
        assert!(err.contains("USAGE: stormsim"), "{err}");
        // Fail-fast: no dataset build may have started.
        assert!(!err.contains("building"), "{err}");
        assert!(!err.contains("prewarming"), "{err}");
    }
}

#[test]
fn bad_env_log_level_fails_fast_too() {
    let out = Command::new(env!("CARGO_BIN_EXE_stormsim"))
        .args(["index"])
        .env("STORMSIM_LOG", "shouty")
        .output()
        .expect("spawn stormsim");
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown log level"), "{err}");
    assert!(err.contains("USAGE: stormsim"), "{err}");
}

#[test]
fn valid_log_level_flag_overrides_bad_env() {
    // The flag wins over STORMSIM_LOG, so a bad env value must not kill
    // an invocation that explicitly chose a level.
    let out = Command::new(env!("CARGO_BIN_EXE_stormsim"))
        .args(["help", "--log-level", "warn"])
        .env("STORMSIM_LOG", "shouty")
        .output()
        .expect("spawn stormsim");
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("USAGE: stormsim"), "{}", stdout(&out));
}

#[test]
fn batch_with_debug_logging_emits_spans_to_the_ndjson_sink() {
    use std::io::Write as _;
    let log_path =
        std::env::temp_dir().join(format!("stormsim-obs-test-{}.ndjson", std::process::id()));
    let mut child = Command::new(env!("CARGO_BIN_EXE_stormsim"))
        .args(["batch", "--log-level", "debug"])
        .env("STORMSIM_LOG_FILE", &log_path)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn stormsim batch");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(include_str!("fixtures/two_scenarios.ndjson").as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("batch finishes");
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    let output = stdout(&out);
    let lines: Vec<&str> = output.lines().collect();
    assert_eq!(lines.len(), 3, "one response per request: {lines:?}");
    for line in [lines[0], lines[2]] {
        assert!(line.contains(r#""ok":true"#), "{line}");
        assert!(
            line.contains(r#""spec_hash""#),
            "scenario responses carry a manifest: {line}"
        );
    }
    // The metrics request is answered in order, mid-stream — not only
    // via the EOF summary on stderr.
    assert!(lines[1].contains(r#""id":"mid-metrics""#), "{}", lines[1]);
    assert!(lines[1].contains(r#""requests":1"#), "{}", lines[1]);
    assert!(lines[1].contains(r#""stages""#), "{}", lines[1]);

    let log = std::fs::read_to_string(&log_path).expect("NDJSON sink file written");
    let _ = std::fs::remove_file(&log_path);
    for span in ["dataset_build", "monte_carlo", "engine_compute"] {
        assert!(
            log.contains(&format!("\"name\":\"{span}\"")),
            "span {span} missing from sink:\n{log}"
        );
    }
    for line in log.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("sink line is valid JSON");
        assert!(v["name"].is_string(), "{line}");
    }
}

#[test]
fn help_and_index_succeed_without_datasets() {
    let out = stormsim(&["help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("USAGE: stormsim"), "{}", stdout(&out));

    let out = stormsim(&["index"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("E13"), "{text}");
    assert!(text.contains("A15"), "{text}");
}
