//! Black-box tests of the `stormsim` binary's argument handling: every
//! malformed invocation must fail fast with a one-line error plus usage
//! on stderr and a nonzero exit code — before any dataset is built.

use std::process::{Command, Output};

fn stormsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_stormsim"))
        .args(args)
        .output()
        .expect("spawn stormsim")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn no_command_prints_usage_and_exits_2() {
    let out = stormsim(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("USAGE: stormsim"), "{}", stderr(&out));
}

#[test]
fn unknown_command_fails_fast_with_usage() {
    let out = stormsim(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown command frobnicate"), "{err}");
    assert!(err.contains("USAGE: stormsim"), "{err}");
    // Fail-fast: the dataset-build banner must not have printed.
    assert!(
        !err.contains("building"),
        "built datasets for a typo: {err}"
    );
}

#[test]
fn bad_option_value_is_rejected() {
    let out = stormsim(&["fig3", "--trials", "abc"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("--trials"), "{err}");
    assert!(err.contains("USAGE: stormsim"), "{err}");
}

#[test]
fn unknown_option_is_rejected() {
    let out = stormsim(&["fig3", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("unknown option --bogus"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn service_commands_reject_bad_options() {
    let out = stormsim(&["serve", "--workers", "many"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--workers"), "{}", stderr(&out));

    let out = stormsim(&["batch", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("unknown option --bogus"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn help_and_index_succeed_without_datasets() {
    let out = stormsim(&["help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("USAGE: stormsim"), "{}", stdout(&out));

    let out = stormsim(&["index"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("E13"), "{text}");
    assert!(text.contains("A15"), "{text}");
}
