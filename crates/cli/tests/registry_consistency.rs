//! The experiment registry is the single source of truth for what the
//! toolkit can do; these tests pin the CLI and the bench suite to it.

use solarstorm::analysis::registry;

const MAIN_SRC: &str = include_str!("../src/main.rs");

/// Every experiment's `cli` name must appear as a quoted string in
/// `main.rs` — i.e. have a dispatch arm (and a `KNOWN_COMMANDS` entry,
/// since both use the same literal).
#[test]
fn every_registry_cli_has_a_dispatch_arm() {
    for e in registry::all() {
        let needle = format!("\"{}\"", e.cli);
        assert!(
            MAIN_SRC.contains(&needle),
            "experiment {} maps to cli command {:?}, but crates/cli/src/main.rs \
             never mentions {needle}; add a dispatch arm",
            e.id,
            e.cli
        );
    }
}

/// Every experiment that names a benchmark must point at a real file
/// under `crates/bench/benches/`.
#[test]
fn every_registry_bench_names_an_existing_file() {
    let benches = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../bench/benches");
    for e in registry::all() {
        if let Some(bench) = e.bench {
            let path = benches.join(format!("{bench}.rs"));
            assert!(
                path.is_file(),
                "experiment {} names bench {bench:?}, but {} does not exist",
                e.id,
                path.display()
            );
        }
    }
}

/// Registry ids stay unique and resolvable — the engine's wire protocol
/// addresses experiments by these ids.
#[test]
fn registry_ids_are_unique_and_resolvable() {
    let all = registry::all();
    for e in all {
        let found = registry::by_id(e.id).expect("by_id resolves every listed id");
        assert_eq!(found.id, e.id);
    }
    let mut ids: Vec<&str> = all.iter().map(|e| e.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), all.len(), "duplicate experiment id in registry");
}
