use crate::{algo, ConnectivityIndex, EdgeId, Graph, NodeId, TopologyError, UnionFind};
use serde::{Deserialize, Serialize};
use solarstorm_geo::{GeoPoint, Polyline};
use std::sync::{Arc, OnceLock};

/// Which physical network a topology models. The paper analyzes three:
/// the global submarine-cable map, the US long-haul fiber map
/// (Intertubes), and the global ITU land-fiber map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkKind {
    /// TeleGeography-style global submarine cable network.
    Submarine,
    /// Intertubes-style US long-haul land fiber.
    LandUs,
    /// ITU-style global land fiber (long- and short-haul mixed).
    LandItu,
}

impl NetworkKind {
    /// Human-readable label used in reports (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            NetworkKind::Submarine => "Submarine",
            NetworkKind::LandUs => "Intertubes",
            NetworkKind::LandItu => "ITU",
        }
    }
}

/// What an infrastructure node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeRole {
    /// Submarine-cable landing station.
    LandingPoint,
    /// City / metro node in a land network.
    City,
}

/// Metadata carried by every network node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// Node name (city or landing-station name).
    pub name: String,
    /// Geographic position.
    pub location: GeoPoint,
    /// ISO-like country code (uppercase, e.g. "US", "SG").
    pub country: String,
    /// Role of the node.
    pub role: NodeRole,
}

/// Index of a cable in a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CableId(pub usize);

/// A physical cable: the *failure unit* of the analysis.
///
/// A submarine cable may branch into several landing points (Equiano has
/// nine branching units); in graph terms it contributes several segments
/// (edges), but repeater damage anywhere on it disables **all** its
/// segments (§3.2.1: "even a single repeater failure can leave all
/// parallel fibers in the cable unusable").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cable {
    /// Cable system name.
    pub name: String,
    /// Graph edges (segments) belonging to this cable.
    pub segments: Vec<EdgeId>,
    /// Total system length in kilometres (what repeater count depends on).
    pub length_km: f64,
    /// Highest absolute latitude over the cable's endpoints and route
    /// waypoints — sets its band in the non-uniform failure models.
    pub max_abs_lat_deg: f64,
}

impl Cable {
    /// Number of repeaters at `spacing_km` intervals along the full system
    /// length. Cables shorter than the spacing carry none (§4.3.1: at
    /// 150 km spacing, 82 of 441 submarine cables need no repeater).
    pub fn repeater_count(&self, spacing_km: f64) -> usize {
        if spacing_km <= 0.0 || !spacing_km.is_finite() || !self.length_km.is_finite() {
            return 0;
        }
        let n = (self.length_km / spacing_km).floor();
        if n <= 0.0 {
            return 0;
        }
        // A repeater exactly at the far landing station is not a repeater.
        if n * spacing_km >= self.length_km - 1e-9 {
            (n as usize).saturating_sub(1)
        } else {
            n as usize
        }
    }
}

/// Per-segment payload stored on graph edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentInfo {
    /// Owning cable.
    pub cable: CableId,
    /// Segment length in kilometres.
    pub length_km: f64,
}

/// A physical cable network: an immutable topology plus the cable registry
/// that groups segments into failure units.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    kind: NetworkKind,
    graph: Graph<NodeInfo, SegmentInfo>,
    cables: Vec<Cable>,
    /// Lazily built flat connectivity index, shared with worker threads.
    /// Dropped (and rebuilt on demand) whenever the topology mutates.
    #[serde(skip)]
    conn: OnceLock<Arc<ConnectivityIndex>>,
}

/// One segment of a cable under construction: endpoints plus either an
/// explicit route or a straight great-circle run.
#[derive(Debug, Clone)]
pub struct SegmentSpec {
    /// First endpoint.
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
    /// Optional explicit route; `None` means the great-circle segment
    /// between the endpoints.
    pub route: Option<Polyline>,
    /// Optional authoritative length in km (e.g. from a cable registry);
    /// `None` computes it from the route/great circle.
    pub length_km: Option<f64>,
}

impl Network {
    /// Creates an empty network of the given kind.
    pub fn new(kind: NetworkKind) -> Self {
        Network {
            kind,
            graph: Graph::new(),
            cables: Vec::new(),
            conn: OnceLock::new(),
        }
    }

    /// Which dataset family this network models.
    pub fn kind(&self) -> NetworkKind {
        self.kind
    }

    /// Adds a node.
    pub fn add_node(&mut self, info: NodeInfo) -> NodeId {
        self.conn.take();
        self.graph.add_node(info)
    }

    /// Adds a cable made of one or more segments. Returns its id.
    ///
    /// The cable's length is the sum of segment lengths; its band latitude
    /// is the maximum over endpoint locations and route waypoints.
    pub fn add_cable(
        &mut self,
        name: impl Into<String>,
        segments: Vec<SegmentSpec>,
    ) -> Result<CableId, TopologyError> {
        if segments.is_empty() {
            return Err(TopologyError::EmptyCable);
        }
        self.conn.take();
        let cable_id = CableId(self.cables.len());
        let mut total_len = 0.0;
        let mut max_lat: f64 = 0.0;
        let mut edge_ids = Vec::with_capacity(segments.len());
        // Validate all endpoints before mutating.
        for s in &segments {
            if s.a.0 >= self.graph.node_count() {
                return Err(TopologyError::NodeOutOfRange {
                    index: s.a.0,
                    len: self.graph.node_count(),
                });
            }
            if s.b.0 >= self.graph.node_count() {
                return Err(TopologyError::NodeOutOfRange {
                    index: s.b.0,
                    len: self.graph.node_count(),
                });
            }
            if s.a == s.b {
                return Err(TopologyError::SelfLoop { node: s.a.0 });
            }
        }
        for s in segments {
            let pa = self.graph.node(s.a).expect("validated").location;
            let pb = self.graph.node(s.b).expect("validated").location;
            let geo_len = match &s.route {
                Some(r) => r.length_km(),
                None => solarstorm_geo::haversine_km(pa, pb),
            };
            let len = s.length_km.unwrap_or(geo_len).max(0.0);
            total_len += len;
            max_lat = max_lat.max(pa.abs_lat_deg()).max(pb.abs_lat_deg());
            if let Some(r) = &s.route {
                max_lat = max_lat.max(r.max_abs_lat_deg());
            }
            let e = self.graph.add_edge(
                s.a,
                s.b,
                SegmentInfo {
                    cable: cable_id,
                    length_km: len,
                },
            )?;
            edge_ids.push(e);
        }
        self.cables.push(Cable {
            name: name.into(),
            segments: edge_ids,
            length_km: total_len,
            max_abs_lat_deg: max_lat,
        });
        Ok(cable_id)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph<NodeInfo, SegmentInfo> {
        &self.graph
    }

    /// The flat connectivity index, built on first use and cached until
    /// the next topology mutation. The `Arc` makes it cheap to hand to
    /// worker threads that outlive any borrow of `self`.
    pub fn connectivity(&self) -> Arc<ConnectivityIndex> {
        self.conn
            .get_or_init(|| Arc::new(ConnectivityIndex::build(self)))
            .clone()
    }

    /// All cables.
    pub fn cables(&self) -> &[Cable] {
        &self.cables
    }

    /// A cable by id.
    pub fn cable(&self, id: CableId) -> Option<&Cable> {
        self.cables.get(id.0)
    }

    /// Number of cables.
    pub fn cable_count(&self) -> usize {
        self.cables.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Node metadata.
    pub fn node(&self, id: NodeId) -> Option<&NodeInfo> {
        self.graph.node(id)
    }

    /// Iterates `(id, info)` over nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &NodeInfo)> {
        self.graph.nodes()
    }

    /// The cable owning a graph edge.
    pub fn edge_cable(&self, e: EdgeId) -> Option<CableId> {
        self.graph.edge(e).map(|s| s.cable)
    }

    /// Ids of cables with at least one segment incident to `n`
    /// (deduplicated, in ascending order).
    pub fn cables_at(&self, n: NodeId) -> Vec<CableId> {
        let mut ids: Vec<CableId> = self
            .graph
            .neighbors(n)
            .iter()
            .filter_map(|&(e, _)| self.edge_cable(e))
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Edge-liveness predicate for a dead-cable mask (`dead[cable] == true`
    /// means the cable failed). Edges of unknown cables count as dead.
    pub fn edge_alive<'a>(&'a self, dead: &'a [bool]) -> impl Fn(EdgeId) -> bool + 'a {
        move |e| match self.edge_cable(e) {
            Some(CableId(c)) => !dead.get(c).copied().unwrap_or(true),
            None => false,
        }
    }

    /// Per-node unreachability under a dead-cable mask, per the paper's
    /// definition: a node is unreachable when **all** cables touching it
    /// are dead. Nodes with no cables at all are reported reachable
    /// (they do not exist in the paper's datasets).
    pub fn unreachable_nodes(&self, dead: &[bool]) -> Vec<bool> {
        (0..self.graph.node_count())
            .map(|i| {
                let nbrs = self.graph.neighbors(NodeId(i));
                !nbrs.is_empty()
                    && nbrs.iter().all(|&(e, _)| {
                        self.edge_cable(e)
                            .map(|CableId(c)| dead.get(c).copied().unwrap_or(true))
                            .unwrap_or(true)
                    })
            })
            .collect()
    }

    /// Fraction (%) of cables marked dead.
    pub fn percent_cables_dead(&self, dead: &[bool]) -> f64 {
        if self.cables.is_empty() {
            return 0.0;
        }
        100.0 * dead.iter().filter(|&&d| d).count() as f64 / self.cables.len() as f64
    }

    /// Fraction (%) of nodes unreachable under a dead-cable mask.
    /// Served by the cached [`ConnectivityIndex`]: near-linear, and
    /// allocation-free once the index exists.
    pub fn percent_nodes_unreachable(&self, dead: &[bool]) -> f64 {
        let n = self.graph.node_count();
        if n == 0 {
            return 0.0;
        }
        let count = self.connectivity().unreachable_count(dead);
        100.0 * count as f64 / n as f64
    }

    /// Connected components of the surviving subgraph. Labels are dense
    /// and assigned in first-occurrence node-id order — identical to
    /// [`algo::connected_components`] over [`Network::edge_alive`].
    pub fn surviving_components(&self, dead: &[bool]) -> (Vec<usize>, usize) {
        let conn = self.connectivity();
        let mut uf = UnionFind::new();
        let mut labels = Vec::new();
        let count = conn.component_labels(dead, &mut uf, &mut labels);
        (labels, count)
    }

    /// Component count of the surviving subgraph into caller-provided
    /// union-find scratch — the zero-allocation path for hot loops.
    pub fn surviving_component_count(&self, dead: &[bool], uf: &mut UnionFind) -> usize {
        self.connectivity().component_count(dead, uf)
    }

    /// True if any surviving path connects the two node sets.
    pub fn sets_connected(&self, from: &[NodeId], to: &[NodeId], dead: &[bool]) -> bool {
        let seen = algo::reachable_from(&self.graph, from, self.edge_alive(dead));
        to.iter().any(|n| seen.get(n.0).copied().unwrap_or(false))
    }

    /// Nodes of the given country (by exact country-code match).
    pub fn nodes_of_country(&self, country: &str) -> Vec<NodeId> {
        self.graph
            .nodes()
            .filter(|(_, info)| info.country == country)
            .map(|(id, _)| id)
            .collect()
    }

    /// Locations of all nodes (used by latitude-distribution analyses).
    pub fn node_locations(&self) -> Vec<GeoPoint> {
        self.graph.nodes().map(|(_, i)| i.location).collect()
    }

    /// Node set within one alive hop of `seeds` — Fig. 4's "one-hop
    /// endpoints": submarine endpoints with a direct link to points above
    /// the latitude threshold. All cables are considered alive.
    pub fn one_hop_closure(&self, seeds: &[NodeId]) -> Vec<NodeId> {
        let mut mask = vec![false; self.graph.node_count()];
        for &s in seeds {
            if s.0 < mask.len() {
                mask[s.0] = true;
            }
        }
        let mut out: Vec<NodeId> = Vec::new();
        for i in 0..mask.len() {
            if mask[i] {
                out.push(NodeId(i));
                continue;
            }
            if self
                .graph
                .neighbors(NodeId(i))
                .iter()
                .any(|&(_, v)| mask[v.0])
            {
                out.push(NodeId(i));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str, lat: f64, lon: f64, country: &str) -> NodeInfo {
        NodeInfo {
            name: name.into(),
            location: GeoPoint::new(lat, lon).unwrap(),
            country: country.into(),
            role: NodeRole::LandingPoint,
        }
    }

    /// Tiny transatlantic-ish test network:
    /// - cable "TA" (long, high latitude): NYC - London
    /// - cable "SA" (long, lower latitude): Fortaleza - Lisbon
    /// - cable "EU" (short): London - Lisbon
    fn tiny() -> (Network, Vec<NodeId>) {
        let mut net = Network::new(NetworkKind::Submarine);
        let nyc = net.add_node(node("NYC", 40.7, -74.0, "US"));
        let lon = net.add_node(node("London", 51.5, -0.1, "GB"));
        let fort = net.add_node(node("Fortaleza", -3.7, -38.5, "BR"));
        let lis = net.add_node(node("Lisbon", 38.7, -9.1, "PT"));
        net.add_cable(
            "TA",
            vec![SegmentSpec {
                a: nyc,
                b: lon,
                route: None,
                length_km: Some(6500.0),
            }],
        )
        .unwrap();
        net.add_cable(
            "SA",
            vec![SegmentSpec {
                a: fort,
                b: lis,
                route: None,
                length_km: Some(6200.0),
            }],
        )
        .unwrap();
        net.add_cable(
            "EU",
            vec![SegmentSpec {
                a: lon,
                b: lis,
                route: None,
                length_km: None,
            }],
        )
        .unwrap();
        (net, vec![nyc, lon, fort, lis])
    }

    #[test]
    fn cable_lengths_and_bands() {
        let (net, _) = tiny();
        assert_eq!(net.cable_count(), 3);
        let ta = net.cable(CableId(0)).unwrap();
        assert_eq!(ta.length_km, 6500.0);
        assert_eq!(ta.max_abs_lat_deg, 51.5);
        let eu = net.cable(CableId(2)).unwrap();
        // London-Lisbon great circle is ~1,585 km.
        assert!((eu.length_km - 1585.0).abs() < 30.0, "{}", eu.length_km);
    }

    #[test]
    fn repeater_counts_follow_length() {
        let (net, _) = tiny();
        let ta = net.cable(CableId(0)).unwrap();
        assert_eq!(ta.repeater_count(150.0), 43); // floor(6500/150) = 43
                                                  // 6500 is an exact multiple of 50; the sample at the far landing
                                                  // station is not a repeater, so 129 rather than 130.
        assert_eq!(ta.repeater_count(50.0), 129);
        assert_eq!(ta.repeater_count(0.0), 0);
        let short = Cable {
            name: "short".into(),
            segments: vec![],
            length_km: 100.0,
            max_abs_lat_deg: 0.0,
        };
        assert_eq!(short.repeater_count(150.0), 0);
        let exact = Cable {
            name: "exact".into(),
            segments: vec![],
            length_km: 300.0,
            max_abs_lat_deg: 0.0,
        };
        assert_eq!(exact.repeater_count(100.0), 2);
    }

    #[test]
    fn empty_cable_rejected() {
        let mut net = Network::new(NetworkKind::Submarine);
        assert_eq!(net.add_cable("x", vec![]), Err(TopologyError::EmptyCable));
    }

    #[test]
    fn dead_mask_drives_reachability() {
        let (net, ids) = tiny();
        let (nyc, lon, fort, lis) = (ids[0], ids[1], ids[2], ids[3]);
        // All alive: one component.
        let (_, count) = net.surviving_components(&[false, false, false]);
        assert_eq!(count, 1);
        // Kill TA: NYC unreachable, everything else fine.
        let dead = [true, false, false];
        let unreachable = net.unreachable_nodes(&dead);
        assert!(unreachable[nyc.0]);
        assert!(!unreachable[lon.0] && !unreachable[fort.0] && !unreachable[lis.0]);
        assert_eq!(net.percent_nodes_unreachable(&dead), 25.0);
        assert!((net.percent_cables_dead(&dead) - 100.0 / 3.0).abs() < 1e-9);
        assert!(!net.sets_connected(&[nyc], &[lon], &dead));
        assert!(net.sets_connected(&[fort], &[lon], &dead));
    }

    #[test]
    fn country_lookup() {
        let (net, ids) = tiny();
        assert_eq!(net.nodes_of_country("US"), vec![ids[0]]);
        assert_eq!(net.nodes_of_country("BR"), vec![ids[2]]);
        assert!(net.nodes_of_country("XX").is_empty());
    }

    #[test]
    fn one_hop_closure_includes_direct_neighbors() {
        let (net, ids) = tiny();
        let (nyc, lon, fort, lis) = (ids[0], ids[1], ids[2], ids[3]);
        // Seed = {London}: one hop reaches NYC (TA) and Lisbon (EU).
        let closure = net.one_hop_closure(&[lon]);
        assert!(closure.contains(&nyc));
        assert!(closure.contains(&lis));
        assert!(closure.contains(&lon));
        assert!(!closure.contains(&fort));
    }

    #[test]
    fn multi_segment_cable_fails_as_a_unit() {
        let mut net = Network::new(NetworkKind::Submarine);
        let a = net.add_node(node("A", 0.0, 0.0, "AA"));
        let b = net.add_node(node("B", 0.0, 10.0, "BB"));
        let c = net.add_node(node("C", 0.0, 20.0, "CC"));
        let id = net
            .add_cable(
                "branchy",
                vec![
                    SegmentSpec {
                        a,
                        b,
                        route: None,
                        length_km: Some(1000.0),
                    },
                    SegmentSpec {
                        a: b,
                        b: c,
                        route: None,
                        length_km: Some(2000.0),
                    },
                ],
            )
            .unwrap();
        assert_eq!(net.cable(id).unwrap().length_km, 3000.0);
        assert_eq!(net.cable(id).unwrap().segments.len(), 2);
        // Cable dead => every node isolated.
        let unreachable = net.unreachable_nodes(&[true]);
        assert!(unreachable.iter().all(|&u| u));
        let (_, comps) = net.surviving_components(&[true]);
        assert_eq!(comps, 3);
    }

    #[test]
    fn route_waypoints_raise_band_latitude() {
        let mut net = Network::new(NetworkKind::Submarine);
        let a = net.add_node(node("A", 50.0, -50.0, "AA"));
        let b = net.add_node(node("B", 50.0, 0.0, "BB"));
        let route = Polyline::new(vec![
            GeoPoint::new(50.0, -50.0).unwrap(),
            GeoPoint::new(65.0, -25.0).unwrap(), // arctic detour
            GeoPoint::new(50.0, 0.0).unwrap(),
        ])
        .unwrap();
        let id = net
            .add_cable(
                "arctic",
                vec![SegmentSpec {
                    a,
                    b,
                    route: Some(route),
                    length_km: None,
                }],
            )
            .unwrap();
        assert_eq!(net.cable(id).unwrap().max_abs_lat_deg, 65.0);
    }

    #[test]
    fn cables_at_deduplicates() {
        let (net, ids) = tiny();
        let at_london = net.cables_at(ids[1]);
        assert_eq!(at_london, vec![CableId(0), CableId(2)]);
    }
}
