//! Graph substrate and network-topology domain model for the `solarstorm`
//! toolkit.
//!
//! Two layers:
//!
//! * a generic arena [`Graph`] with parallel-edge support and the
//!   filter-aware algorithms the study needs ([`algo`]): connected
//!   components, reachability, bridges/articulation points, Dijkstra;
//! * the domain layer: [`Network`] — a physical cable network in which a
//!   [`Cable`] is a *failure unit* spanning one or more graph segments
//!   (real submarine cables land in several cities; one destroyed repeater
//!   takes out every fiber pair on the cable, §3.2.1 of the paper).
//!
//! The failure semantics follow §4.3.1: a cable dies if **any** of its
//! repeaters dies; a node is **unreachable** when every cable touching it
//! is dead. Partition-level analysis (which countries stay connected)
//! runs on the surviving-edge subgraph.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod algo;
mod csr;
mod error;
mod graph;
mod lanes;
mod network;
mod replay;
mod unionfind;

pub use csr::ConnectivityIndex;
pub use lanes::LaneClasses;
pub use error::TopologyError;
pub use graph::{EdgeId, Graph, NodeId};
pub use network::{
    Cable, CableId, Network, NetworkKind, NodeInfo, NodeRole, SegmentInfo, SegmentSpec,
};
pub use replay::EdgeReplay;
pub use unionfind::UnionFind;
