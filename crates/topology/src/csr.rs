//! Flat CSR (compressed sparse row) connectivity index over a
//! [`Network`].
//!
//! The Monte Carlo hot loop asks two questions of the topology per
//! trial: "which nodes have every incident cable dead?" and "how many
//! components survive?". Answering them through the nested
//! `Vec<Vec<(EdgeId, NodeId)>>` adjacency plus per-edge cable lookups
//! costs a pointer chase per neighbor; this index flattens the
//! node→incident-cable and segment→(endpoints, cable) relations into
//! contiguous `u32` arrays built once per network and shared (via
//! `Arc`) across worker threads. All queries take a dead-cable mask —
//! either a `&[bool]` or a packed `u64` bitset — and allocate nothing.

use crate::{Network, UnionFind};

/// Immutable flat view of a network's cable incidence structure.
///
/// Built lazily by [`Network::connectivity`] and cached on the network;
/// cheap to share across threads.
#[derive(Debug, Clone)]
pub struct ConnectivityIndex {
    node_count: usize,
    cable_count: usize,
    /// Nodes with at least one incident segment — the unreachable count
    /// of the all-dead scenario, hoisted so per-trial resets are O(1).
    non_isolated_count: usize,
    /// CSR offsets into `incident_cable`, length `node_count + 1`.
    offsets: Vec<u32>,
    /// Owning cable of each incident segment, grouped by node.
    incident_cable: Vec<u32>,
    /// Per graph edge: endpoint `a`.
    edge_a: Vec<u32>,
    /// Per graph edge: endpoint `b`.
    edge_b: Vec<u32>,
    /// Per graph edge: owning cable.
    edge_cable: Vec<u32>,
    /// CSR offsets into `cable_edges`, length `cable_count + 1`.
    cable_edge_offsets: Vec<u32>,
    /// Graph-edge ids grouped by owning cable (inverse of `edge_cable`).
    cable_edges: Vec<u32>,
}

/// True when cable `c` is dead under a boolean mask. Cables beyond the
/// mask count as dead, matching [`Network::edge_alive`].
#[inline]
fn dead_bool(dead: &[bool], c: u32) -> bool {
    dead.get(c as usize).copied().unwrap_or(true)
}

/// True when cable `c` is dead under a packed bitset (one bit per
/// cable, word-major). Cables beyond the mask count as dead.
#[inline]
fn dead_word(dead_words: &[u64], c: u32) -> bool {
    match dead_words.get((c >> 6) as usize) {
        Some(w) => (w >> (c & 63)) & 1 == 1,
        None => true,
    }
}

impl ConnectivityIndex {
    /// Builds the index from a network. O(nodes + segments).
    pub(crate) fn build(net: &Network) -> ConnectivityIndex {
        let g = net.graph();
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut incident_cable = Vec::with_capacity(2 * g.edge_count());
        offsets.push(0);
        for node in g.node_ids() {
            for &(e, _) in g.neighbors(node) {
                let cable = net.edge_cable(e).expect("every segment has a cable").0;
                incident_cable.push(cable as u32);
            }
            offsets.push(incident_cable.len() as u32);
        }
        let mut edge_a = Vec::with_capacity(g.edge_count());
        let mut edge_b = Vec::with_capacity(g.edge_count());
        let mut edge_cable = Vec::with_capacity(g.edge_count());
        for (_, a, b, seg) in g.edges() {
            edge_a.push(a.0 as u32);
            edge_b.push(b.0 as u32);
            edge_cable.push(seg.cable.0 as u32);
        }
        // Counting-sort the edges by owning cable into a second CSR, the
        // inverse of `edge_cable`, so reviving one cable touches only its
        // own segments.
        let cable_count = net.cable_count();
        let mut cable_edge_offsets = vec![0u32; cable_count + 1];
        for &c in &edge_cable {
            cable_edge_offsets[c as usize + 1] += 1;
        }
        for i in 0..cable_count {
            cable_edge_offsets[i + 1] += cable_edge_offsets[i];
        }
        let mut cable_edges = vec![0u32; edge_cable.len()];
        let mut cursor = cable_edge_offsets.clone();
        for (e, &c) in edge_cable.iter().enumerate() {
            cable_edges[cursor[c as usize] as usize] = e as u32;
            cursor[c as usize] += 1;
        }
        let non_isolated_count = offsets.windows(2).filter(|w| w[0] != w[1]).count();
        ConnectivityIndex {
            node_count: n,
            cable_count,
            non_isolated_count,
            offsets,
            incident_cable,
            edge_a,
            edge_b,
            edge_cable,
            cable_edge_offsets,
            cable_edges,
        }
    }

    /// Number of nodes indexed.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of cables (failure units) indexed.
    pub fn cable_count(&self) -> usize {
        self.cable_count
    }

    /// Number of graph edges (cable segments) indexed.
    pub fn edge_count(&self) -> usize {
        self.edge_a.len()
    }

    /// Number of `u64` words a packed dead-cable bitset needs.
    pub fn dead_mask_words(&self) -> usize {
        self.cable_count.div_ceil(64)
    }

    /// Nodes with at least one incident segment — exactly the nodes the
    /// all-dead scenario reports unreachable. Hoisted at build time.
    pub fn non_isolated_count(&self) -> usize {
        self.non_isolated_count
    }

    /// Incident-cable ids of one node (with segment multiplicity).
    pub fn incident_cables(&self, node: usize) -> &[u32] {
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        &self.incident_cable[lo..hi]
    }

    /// Graph-edge ids belonging to one cable (its segments).
    pub fn cable_edges(&self, cable: usize) -> &[u32] {
        let lo = self.cable_edge_offsets[cable] as usize;
        let hi = self.cable_edge_offsets[cable + 1] as usize;
        &self.cable_edges[lo..hi]
    }

    /// Endpoint node ids of one graph edge.
    pub fn edge_endpoints(&self, edge: usize) -> (u32, u32) {
        (self.edge_a[edge], self.edge_b[edge])
    }

    /// Nodes left unreachable under a dead-cable mask, per the paper's
    /// definition: a node with at least one incident segment whose
    /// incident cables are all dead. Zero-allocation.
    pub fn unreachable_count(&self, dead: &[bool]) -> usize {
        self.count_unreachable(|c| dead_bool(dead, c))
    }

    /// [`ConnectivityIndex::unreachable_count`] over a packed bitset.
    pub fn unreachable_count_words(&self, dead_words: &[u64]) -> usize {
        self.count_unreachable(|c| dead_word(dead_words, c))
    }

    #[inline]
    fn count_unreachable(&self, mut is_dead: impl FnMut(u32) -> bool) -> usize {
        let mut unreachable = 0;
        for node in 0..self.node_count {
            let lo = self.offsets[node] as usize;
            let hi = self.offsets[node + 1] as usize;
            if lo == hi {
                continue; // isolated nodes are reported reachable
            }
            if self.incident_cable[lo..hi].iter().all(|&c| is_dead(c)) {
                unreachable += 1;
            }
        }
        unreachable
    }

    /// Per-lane unreachable-node counts for one bit-parallel trial
    /// block. `lane_words[c]` is cable `c`'s dead mask across the
    /// block's 64 lanes (bit `l` set = dead in lane `l`); cables beyond
    /// the slice count as dead in every lane, matching the boolean and
    /// packed mask semantics. `out[l]` receives the number of
    /// unreachable nodes in lane `l`; lanes outside `lane_mask` stay 0.
    ///
    /// One pass over the incidence CSR prices all 64 lanes at once: a
    /// node is unreachable in exactly the lanes where the AND of its
    /// incident cables' dead words is still set.
    pub fn unreachable_lanes(&self, lane_words: &[u64], lane_mask: u64, out: &mut [u32; 64]) {
        out.fill(0);
        for node in 0..self.node_count {
            let lo = self.offsets[node] as usize;
            let hi = self.offsets[node + 1] as usize;
            if lo == hi {
                continue; // isolated nodes are reported reachable
            }
            let mut m = lane_mask;
            for &c in &self.incident_cable[lo..hi] {
                m &= lane_words.get(c as usize).copied().unwrap_or(!0);
                if m == 0 {
                    break;
                }
            }
            while m != 0 {
                out[m.trailing_zeros() as usize] += 1;
                m &= m - 1;
            }
        }
    }

    /// Number of connected components of the surviving subgraph,
    /// computed by union-find over the flat edge list. `uf` is reset and
    /// reused; nothing is allocated once its storage is warm.
    pub fn component_count(&self, dead: &[bool], uf: &mut UnionFind) -> usize {
        self.union_alive(|c| dead_bool(dead, c), uf);
        uf.component_count()
    }

    /// [`ConnectivityIndex::component_count`] over a packed bitset.
    pub fn component_count_words(&self, dead_words: &[u64], uf: &mut UnionFind) -> usize {
        self.union_alive(|c| dead_word(dead_words, c), uf);
        uf.component_count()
    }

    /// Dense component labels of the surviving subgraph, written into
    /// `labels` (resized to `node_count`). Returns the component count.
    /// Labels follow first-occurrence order of node ids — byte-identical
    /// to [`crate::algo::connected_components`] over the same scenario.
    pub fn component_labels(
        &self,
        dead: &[bool],
        uf: &mut UnionFind,
        labels: &mut Vec<usize>,
    ) -> usize {
        self.union_alive(|c| dead_bool(dead, c), uf);
        uf.labels_into(labels)
    }

    #[inline]
    fn union_alive(&self, mut is_dead: impl FnMut(u32) -> bool, uf: &mut UnionFind) {
        uf.reset(self.node_count);
        for i in 0..self.edge_cable.len() {
            if !is_dead(self.edge_cable[i]) {
                uf.union(self.edge_a[i], self.edge_b[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Network, NetworkKind, NodeInfo, NodeRole, SegmentSpec, UnionFind};
    use solarstorm_geo::GeoPoint;

    fn node(name: &str, lat: f64, lon: f64) -> NodeInfo {
        NodeInfo {
            name: name.into(),
            location: GeoPoint::new(lat, lon).unwrap(),
            country: "AA".into(),
            role: NodeRole::LandingPoint,
        }
    }

    /// A 4-node network: cable 0 = A-B, cable 1 = B-C + C-D (two
    /// segments), plus an isolated node E.
    fn net() -> Network {
        let mut net = Network::new(NetworkKind::Submarine);
        let a = net.add_node(node("A", 0.0, 0.0));
        let b = net.add_node(node("B", 0.0, 10.0));
        let c = net.add_node(node("C", 0.0, 20.0));
        let d = net.add_node(node("D", 0.0, 30.0));
        net.add_node(node("E", 0.0, 40.0));
        net.add_cable(
            "ab",
            vec![SegmentSpec {
                a,
                b,
                route: None,
                length_km: Some(1000.0),
            }],
        )
        .unwrap();
        net.add_cable(
            "bcd",
            vec![
                SegmentSpec {
                    a: b,
                    b: c,
                    route: None,
                    length_km: Some(1000.0),
                },
                SegmentSpec {
                    a: c,
                    b: d,
                    route: None,
                    length_km: Some(1000.0),
                },
            ],
        )
        .unwrap();
        net
    }

    #[test]
    fn index_shapes_match_network() {
        let net = net();
        let conn = net.connectivity();
        assert_eq!(conn.node_count(), 5);
        assert_eq!(conn.cable_count(), 2);
        assert_eq!(conn.edge_count(), 3);
        assert_eq!(conn.dead_mask_words(), 1);
        assert_eq!(conn.incident_cables(0), &[0]);
        assert_eq!(conn.incident_cables(1), &[0, 1]);
        assert_eq!(conn.incident_cables(2), &[1, 1]);
        assert!(conn.incident_cables(4).is_empty());
    }

    #[test]
    fn cable_edges_invert_edge_cable() {
        let net = net();
        let conn = net.connectivity();
        assert_eq!(conn.cable_edges(0), &[0]);
        assert_eq!(conn.cable_edges(1), &[1, 2]);
        assert_eq!(conn.edge_endpoints(0), (0, 1));
        assert_eq!(conn.edge_endpoints(1), (1, 2));
        assert_eq!(conn.edge_endpoints(2), (2, 3));
    }

    #[test]
    fn unreachable_counts_match_mask_semantics() {
        let net = net();
        let conn = net.connectivity();
        for dead in [[false, false], [true, false], [false, true], [true, true]] {
            let expected = net.unreachable_nodes(&dead).iter().filter(|&&u| u).count();
            assert_eq!(conn.unreachable_count(&dead), expected, "mask {dead:?}");
            let mut words = vec![0u64];
            for (c, &d) in dead.iter().enumerate() {
                if d {
                    words[c >> 6] |= 1 << (c & 63);
                }
            }
            assert_eq!(conn.unreachable_count_words(&words), expected);
        }
    }

    #[test]
    fn short_masks_treat_missing_cables_as_dead() {
        let net = net();
        let conn = net.connectivity();
        // Empty mask: every cable dead, so A..D unreachable, E spared.
        assert_eq!(conn.unreachable_count(&[]), 4);
        assert_eq!(conn.unreachable_count_words(&[]), 4);
    }

    #[test]
    fn unreachable_lanes_match_per_lane_scalar_counts() {
        let net = net();
        let conn = net.connectivity();
        // Four lanes covering every dead-set of the 2-cable network,
        // packed cable-major: bit l of lane_words[c] = cable c in lane l.
        let scenarios = [[false, false], [true, false], [false, true], [true, true]];
        let mut lane_words = vec![0u64; 2];
        for (l, dead) in scenarios.iter().enumerate() {
            for (c, &d) in dead.iter().enumerate() {
                if d {
                    lane_words[c] |= 1 << l;
                }
            }
        }
        let mut out = [0u32; 64];
        conn.unreachable_lanes(&lane_words, 0xF, &mut out);
        for (l, dead) in scenarios.iter().enumerate() {
            assert_eq!(
                out[l] as usize,
                conn.unreachable_count(dead),
                "lane {l} mask {dead:?}"
            );
        }
        assert!(out[4..].iter().all(|&c| c == 0), "masked lanes stay zero");
        // A lane mask excluding some lanes suppresses their counts.
        conn.unreachable_lanes(&lane_words, 0b1000, &mut out);
        assert_eq!(out[3] as usize, conn.unreachable_count(&[true, true]));
        assert!(out[..3].iter().all(|&c| c == 0));
    }

    #[test]
    fn unreachable_lanes_treat_missing_cables_as_dead() {
        let net = net();
        let conn = net.connectivity();
        let mut out = [0u32; 64];
        // No lane words at all: every cable dead in every lane.
        conn.unreachable_lanes(&[], 0b11, &mut out);
        assert_eq!(out[0], 4);
        assert_eq!(out[1], 4);
        // Only cable 0 described (alive everywhere); cable 1 missing.
        conn.unreachable_lanes(&[0u64], 0b1, &mut out);
        assert_eq!(out[0] as usize, conn.unreachable_count(&[false, true]));
    }

    #[test]
    fn component_counts_match_bfs() {
        let net = net();
        let conn = net.connectivity();
        let mut uf = UnionFind::new();
        for dead in [[false, false], [true, false], [false, true], [true, true]] {
            let (_, expected) = net.surviving_components(&dead);
            assert_eq!(
                conn.component_count(&dead, &mut uf),
                expected,
                "mask {dead:?}"
            );
        }
    }

    #[test]
    fn cache_invalidated_by_mutation() {
        let mut net = net();
        assert_eq!(net.connectivity().node_count(), 5);
        let f = net.add_node(node("F", 0.0, 50.0));
        assert_eq!(net.connectivity().node_count(), 6);
        net.add_cable(
            "af",
            vec![SegmentSpec {
                a: crate::NodeId(0),
                b: f,
                route: None,
                length_km: Some(100.0),
            }],
        )
        .unwrap();
        assert_eq!(net.connectivity().cable_count(), 3);
    }
}
