//! Flat union-find (disjoint-set forest) connectivity.
//!
//! The Monte Carlo kernel and the partition analyses measure surviving
//! connectivity thousands of times per sweep. A BFS walk allocates a
//! visited mask and a stack per scenario; this forest instead keeps two
//! flat arrays (`parent`, `rank`) that are reset in O(n) and reused
//! across trials, so the per-scenario cost is near-linear with zero
//! allocation once warm.

/// Reusable disjoint-set forest over dense `u32` ids with union by rank
/// and path halving.
///
/// [`UnionFind::reset`] re-initialises without freeing the backing
/// storage, so one instance can serve an entire trial batch.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Scratch for dense-label extraction (root -> label).
    label_of_root: Vec<u32>,
    components: usize,
}

const NO_LABEL: u32 = u32::MAX;

impl UnionFind {
    /// Creates an empty forest; call [`UnionFind::reset`] before use.
    pub fn new() -> Self {
        UnionFind::default()
    }

    /// Creates a forest pre-sized (and reset) for `n` elements.
    pub fn with_capacity(n: usize) -> Self {
        let mut uf = UnionFind::default();
        uf.reset(n);
        uf
    }

    /// Re-initialises the forest to `n` singleton sets, reusing the
    /// existing allocations where possible.
    pub fn reset(&mut self, n: usize) {
        assert!(
            n <= u32::MAX as usize,
            "union-find supports up to 2^32 - 1 elements"
        );
        self.parent.clear();
        self.parent.extend(0..n as u32);
        self.rank.clear();
        self.rank.resize(n, 0);
        self.components = n;
    }

    /// Number of elements in the forest.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the forest holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set, with path halving.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Merges the sets of `a` and `b`; returns `true` when they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[ra as usize] == self.rank[rb as usize] {
            self.rank[hi as usize] = self.rank[hi as usize].saturating_add(1);
        }
        self.components -= 1;
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets (O(1): tracked across unions).
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x` (O(n): scans all elements).
    pub fn component_size(&mut self, x: u32) -> usize {
        let root = self.find(x);
        let n = self.parent.len();
        (0..n as u32).filter(|&i| self.find(i) == root).count()
    }

    /// Writes dense component labels into `labels` and returns the
    /// component count. Labels are assigned in first-occurrence order of
    /// element ids, matching the labelling convention of
    /// [`crate::algo::connected_components`], so the two paths produce
    /// byte-identical partitions.
    pub fn labels_into(&mut self, labels: &mut Vec<usize>) -> usize {
        let n = self.parent.len();
        labels.clear();
        labels.resize(n, 0);
        self.label_of_root.clear();
        self.label_of_root.resize(n, NO_LABEL);
        let mut next = 0u32;
        for i in 0..n as u32 {
            let root = self.find(i) as usize;
            if self.label_of_root[root] == NO_LABEL {
                self.label_of_root[root] = next;
                next += 1;
            }
            labels[i as usize] = self.label_of_root[root] as usize;
        }
        next as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_after_reset() {
        let mut uf = UnionFind::with_capacity(5);
        assert_eq!(uf.len(), 5);
        assert_eq!(uf.component_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::with_capacity(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already joined");
        assert_eq!(uf.component_count(), 4);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
        assert_eq!(uf.component_size(0), 3);
        assert_eq!(uf.component_size(5), 1);
    }

    #[test]
    fn labels_are_dense_and_first_occurrence_ordered() {
        let mut uf = UnionFind::with_capacity(5);
        // {0}, {1, 3}, {2, 4}
        uf.union(1, 3);
        uf.union(2, 4);
        let mut labels = Vec::new();
        let count = uf.labels_into(&mut labels);
        assert_eq!(count, 3);
        assert_eq!(labels, vec![0, 1, 2, 1, 2]);
    }

    #[test]
    fn reset_reuses_storage() {
        let mut uf = UnionFind::with_capacity(8);
        uf.union(0, 7);
        uf.reset(3);
        assert_eq!(uf.len(), 3);
        assert_eq!(uf.component_count(), 3);
        assert_eq!(uf.find(2), 2);
    }

    #[test]
    fn empty_forest() {
        let mut uf = UnionFind::new();
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
        let mut labels = vec![9];
        assert_eq!(uf.labels_into(&mut labels), 0);
        assert!(labels.is_empty());
    }
}
