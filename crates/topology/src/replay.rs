//! Incremental edge replay over [`UnionFind`] + [`ConnectivityIndex`].
//!
//! The common-random-numbers sweep kernel walks a probability axis from
//! its harshest point (everything dead) toward its mildest, reviving
//! cables as their thresholds are crossed. Recomputing connectivity from
//! scratch at each point would cost `O(points × (edges + nodes))` per
//! trial; this layer instead maintains the two connectivity metrics
//! *incrementally* under cable revival:
//!
//! * component count — delegated to [`UnionFind`], which already tracks
//!   it across unions in O(1);
//! * unreachable-node count — maintained by per-node alive-incidence
//!   counters: a node with incident segments is unreachable while all of
//!   them are dead, so the count only changes on a counter's 0→1 edge.
//!
//! Reviving a cable touches only its own segments (via
//! [`ConnectivityIndex::cable_edges`]), so replaying a whole axis costs
//! one union-find pass over the edges total, independent of the number
//! of sweep points.

use crate::{ConnectivityIndex, UnionFind};

/// Reusable state for replaying cable revivals over a network.
///
/// [`EdgeReplay::reset`] starts from the all-dead scenario (every node
/// with incident segments unreachable, every node a singleton
/// component); [`EdgeReplay::revive`] brings one cable back. Each cable
/// must be revived at most once between resets — the metrics assume
/// revivals are distinct.
#[derive(Debug, Clone)]
pub struct EdgeReplay {
    uf: UnionFind,
    /// Per node: number of currently-alive incident segment endpoints.
    alive_incident: Vec<u32>,
    unreachable: usize,
    /// When false, union-find maintenance is skipped entirely: revivals
    /// only update the alive-incidence counters, and
    /// [`EdgeReplay::component_count`] must not be called. The sweep
    /// kernel's hot loop reads only the unreachable count, and skipping
    /// the unions roughly halves its per-edge cost.
    track_components: bool,
}

impl Default for EdgeReplay {
    fn default() -> Self {
        EdgeReplay::new()
    }
}

impl EdgeReplay {
    /// Creates an empty replay tracking both metrics; call
    /// [`EdgeReplay::reset`] before use.
    pub fn new() -> Self {
        EdgeReplay {
            uf: UnionFind::default(),
            alive_incident: Vec::new(),
            unreachable: 0,
            track_components: true,
        }
    }

    /// Creates a replay that maintains only the unreachable-node count,
    /// skipping all union-find work. [`EdgeReplay::component_count`]
    /// panics on such a replay.
    pub fn unreachable_only() -> Self {
        EdgeReplay {
            track_components: false,
            ..EdgeReplay::new()
        }
    }

    /// Re-initialises for `conn`'s network with every cable dead,
    /// reusing existing allocations. O(nodes).
    pub fn reset(&mut self, conn: &ConnectivityIndex) {
        let n = conn.node_count();
        if self.track_components {
            self.uf.reset(n);
        }
        self.alive_incident.clear();
        self.alive_incident.resize(n, 0);
        // All cables dead: exactly the non-isolated nodes are unreachable.
        self.unreachable = conn.non_isolated_count();
    }

    /// Revives one cable: unions its segments' endpoints and credits
    /// each endpoint with an alive incident segment. O(cable segments).
    pub fn revive(&mut self, conn: &ConnectivityIndex, cable: usize) {
        for &e in conn.cable_edges(cable) {
            let (a, b) = conn.edge_endpoints(e as usize);
            if self.track_components {
                self.uf.union(a, b);
            }
            self.mark_alive(a);
            self.mark_alive(b);
        }
    }

    #[inline]
    fn mark_alive(&mut self, node: u32) {
        let slot = &mut self.alive_incident[node as usize];
        if *slot == 0 {
            self.unreachable -= 1;
        }
        *slot += 1;
    }

    /// Nodes currently unreachable (all incident cables dead; isolated
    /// nodes count as reachable), matching
    /// [`ConnectivityIndex::unreachable_count`] on the same dead set.
    pub fn unreachable_count(&self) -> usize {
        self.unreachable
    }

    /// Connected components of the current surviving subgraph (isolated
    /// and fully-dead nodes count as singletons), matching
    /// [`ConnectivityIndex::component_count`] on the same dead set.
    ///
    /// # Panics
    ///
    /// On a replay built with [`EdgeReplay::unreachable_only`], which
    /// does not maintain the union-find this reads.
    pub fn component_count(&self) -> usize {
        assert!(
            self.track_components,
            "component_count on an unreachable_only EdgeReplay"
        );
        self.uf.component_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, NetworkKind, NodeInfo, NodeRole, SegmentSpec};
    use solarstorm_geo::GeoPoint;

    fn node(name: &str, lat: f64, lon: f64) -> NodeInfo {
        NodeInfo {
            name: name.into(),
            location: GeoPoint::new(lat, lon).unwrap(),
            country: "AA".into(),
            role: NodeRole::LandingPoint,
        }
    }

    /// 5 nodes: cable 0 = A-B, cable 1 = B-C + C-D, isolated E.
    fn net() -> Network {
        let mut net = Network::new(NetworkKind::Submarine);
        let a = net.add_node(node("A", 0.0, 0.0));
        let b = net.add_node(node("B", 0.0, 10.0));
        let c = net.add_node(node("C", 0.0, 20.0));
        let d = net.add_node(node("D", 0.0, 30.0));
        net.add_node(node("E", 0.0, 40.0));
        net.add_cable(
            "ab",
            vec![SegmentSpec {
                a,
                b,
                route: None,
                length_km: Some(1000.0),
            }],
        )
        .unwrap();
        net.add_cable(
            "bcd",
            vec![
                SegmentSpec {
                    a: b,
                    b: c,
                    route: None,
                    length_km: Some(1000.0),
                },
                SegmentSpec {
                    a: c,
                    b: d,
                    route: None,
                    length_km: Some(1000.0),
                },
            ],
        )
        .unwrap();
        net
    }

    #[test]
    fn reset_is_the_all_dead_scenario() {
        let net = net();
        let conn = net.connectivity();
        let mut replay = EdgeReplay::new();
        replay.reset(&conn);
        assert_eq!(
            replay.unreachable_count(),
            conn.unreachable_count(&[true, true])
        );
        let mut uf = UnionFind::new();
        assert_eq!(
            replay.component_count(),
            conn.component_count(&[true, true], &mut uf)
        );
    }

    #[test]
    fn revivals_match_full_recomputation() {
        let net = net();
        let conn = net.connectivity();
        let mut uf = UnionFind::new();
        // Every revival order over the two cables.
        for order in [[0usize, 1], [1, 0]] {
            let mut replay = EdgeReplay::new();
            replay.reset(&conn);
            let mut dead = [true, true];
            for &cable in &order {
                replay.revive(&conn, cable);
                dead[cable] = false;
                assert_eq!(
                    replay.unreachable_count(),
                    conn.unreachable_count(&dead),
                    "order {order:?}, dead {dead:?}"
                );
                assert_eq!(
                    replay.component_count(),
                    conn.component_count(&dead, &mut uf),
                    "order {order:?}, dead {dead:?}"
                );
            }
        }
    }

    #[test]
    fn unreachable_only_matches_tracking_replay() {
        let net = net();
        let conn = net.connectivity();
        let mut full = EdgeReplay::new();
        let mut light = EdgeReplay::unreachable_only();
        full.reset(&conn);
        light.reset(&conn);
        assert_eq!(light.unreachable_count(), full.unreachable_count());
        for cable in [1usize, 0] {
            full.revive(&conn, cable);
            light.revive(&conn, cable);
            assert_eq!(light.unreachable_count(), full.unreachable_count());
        }
    }

    #[test]
    #[should_panic(expected = "unreachable_only")]
    fn component_count_panics_without_tracking() {
        let net = net();
        let conn = net.connectivity();
        let mut light = EdgeReplay::unreachable_only();
        light.reset(&conn);
        let _ = light.component_count();
    }

    #[test]
    fn reset_reuses_storage_between_networks() {
        let net = net();
        let conn = net.connectivity();
        let mut replay = EdgeReplay::new();
        replay.reset(&conn);
        replay.revive(&conn, 0);
        replay.revive(&conn, 1);
        assert_eq!(replay.unreachable_count(), 0);
        replay.reset(&conn);
        assert_eq!(replay.unreachable_count(), 4);
        assert_eq!(replay.component_count(), 5);
    }
}
