//! Lane deduplication for bit-parallel trial blocks.
//!
//! The bit-parallel Monte Carlo kernel evaluates 64 trials at once,
//! cable-major: `lane_words[c]` holds cable `c`'s dead bit for each of
//! the block's 64 lanes. The cheap per-lane metrics (failed-cable
//! popcounts, the AND-pass unreachable counts) never need to know which
//! lanes coincide — but anything priced by scalar union-find does.
//! At low failure probabilities most lanes share the all-alive dead-set,
//! and near certainty they share the all-dead one, so deduplicating
//! identical dead-set lanes first collapses most of a block to a handful
//! of distinct scenarios.
//!
//! [`LaneClasses`] computes that partition by refinement: start from one
//! class holding every active lane and split it by each cable word that
//! distinguishes lanes. [`ConnectivityIndex::component_count_lanes`]
//! then runs the scalar union-find once per *distinct* dead-set and
//! broadcasts each count to the lanes of its class.

use crate::csr::ConnectivityIndex;
use crate::UnionFind;

/// Partition of a 64-lane trial block into groups of lanes with
/// identical dead-cable sets, each group a bitmask over lanes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneClasses {
    /// Disjoint, non-empty lane masks whose union is the active mask.
    classes: Vec<u64>,
}

impl LaneClasses {
    /// Refines the active lanes (`lane_mask`) into equivalence classes
    /// under "identical dead bit on every cable". O(cables × classes)
    /// worst case, with an early exit once every class is a singleton;
    /// cable words that are all-alive or all-dead across the active
    /// lanes — the common case away from p ≈ 0.5 — refine nothing and
    /// cost O(1).
    pub fn partition(lane_words: &[u64], lane_mask: u64) -> LaneClasses {
        let mut classes = Vec::new();
        if lane_mask == 0 {
            return LaneClasses { classes };
        }
        classes.push(lane_mask);
        let singletons = lane_mask.count_ones() as usize;
        for &w in lane_words {
            if classes.len() == singletons {
                break; // fully refined: every lane distinct
            }
            let wm = w & lane_mask;
            if wm == 0 || wm == lane_mask {
                continue; // cable agrees across all active lanes
            }
            for i in 0..classes.len() {
                let dead = classes[i] & wm;
                let alive = classes[i] & !wm;
                if dead != 0 && alive != 0 {
                    classes[i] = dead;
                    classes.push(alive);
                }
            }
        }
        LaneClasses { classes }
    }

    /// The class masks: disjoint, non-empty, union = the active mask.
    pub fn classes(&self) -> &[u64] {
        &self.classes
    }

    /// Number of distinct dead-sets in the block.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when no lanes were active.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

impl ConnectivityIndex {
    /// Per-lane surviving-component counts for one bit-parallel trial
    /// block, deduplicated: the scalar union-find runs once per
    /// *distinct* dead-set among the active lanes, and its count is
    /// broadcast to every lane of that class. `lane_words` is
    /// cable-major as in [`ConnectivityIndex::unreachable_lanes`];
    /// cables beyond the slice count as dead in every lane. Lanes
    /// outside `lane_mask` are left 0. Returns the number of distinct
    /// dead-sets solved.
    pub fn component_count_lanes(
        &self,
        lane_words: &[u64],
        lane_mask: u64,
        uf: &mut UnionFind,
        out: &mut [usize; 64],
    ) -> usize {
        out.fill(0);
        let classes = LaneClasses::partition(lane_words, lane_mask);
        let mut dead_words = vec![0u64; self.dead_mask_words()];
        for &class in classes.classes() {
            let rep = class.trailing_zeros();
            // Gather the representative lane's dead-set as a packed
            // cable bitset; undescribed cables are dead everywhere.
            dead_words.fill(0);
            for (c, &lw) in lane_words.iter().enumerate().take(self.cable_count()) {
                if (lw >> rep) & 1 == 1 {
                    dead_words[c >> 6] |= 1 << (c & 63);
                }
            }
            for c in lane_words.len()..self.cable_count() {
                dead_words[c >> 6] |= 1 << (c & 63);
            }
            let count = self.component_count_words(&dead_words, uf);
            let mut m = class;
            while m != 0 {
                out[m.trailing_zeros() as usize] = count;
                m &= m - 1;
            }
        }
        classes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, NetworkKind, NodeInfo, NodeRole, SegmentSpec};
    use proptest::prelude::*;
    use solarstorm_geo::GeoPoint;

    /// Brute-force partition: group active lanes by their full dead-set
    /// column, in first-lane order.
    fn brute_partition(lane_words: &[u64], lane_mask: u64) -> Vec<u64> {
        let mut groups: Vec<(Vec<bool>, u64)> = Vec::new();
        for l in 0..64 {
            if (lane_mask >> l) & 1 == 0 {
                continue;
            }
            let column: Vec<bool> = lane_words.iter().map(|&w| (w >> l) & 1 == 1).collect();
            match groups.iter_mut().find(|(sig, _)| *sig == column) {
                Some((_, mask)) => *mask |= 1 << l,
                None => groups.push((column, 1 << l)),
            }
        }
        groups.into_iter().map(|(_, mask)| mask).collect()
    }

    fn assert_same_partition(classes: &LaneClasses, brute: &[u64], ctx: &str) {
        let mut a: Vec<u64> = classes.classes().to_vec();
        let mut b: Vec<u64> = brute.to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "{ctx}");
    }

    #[test]
    fn partition_edge_cases() {
        assert!(LaneClasses::partition(&[], 0).is_empty());
        // No cables: every lane shares the empty dead-set.
        let all = LaneClasses::partition(&[], !0);
        assert_eq!(all.classes(), &[!0u64]);
        // One cable splitting the block in half.
        let half = LaneClasses::partition(&[0x0000_0000_FFFF_FFFF], !0);
        assert_eq!(half.len(), 2);
        assert_same_partition(
            &half,
            &brute_partition(&[0x0000_0000_FFFF_FFFF], !0),
            "half split",
        );
        // All-dead and all-alive cables refine nothing.
        let none = LaneClasses::partition(&[0, !0, 0, !0], !0);
        assert_eq!(none.classes(), &[!0u64]);
    }

    #[test]
    fn partition_matches_brute_force_on_fixed_patterns() {
        let words = [
            0xDEAD_BEEF_0123_4567u64,
            0x0000_FFFF_0000_FFFF,
            0xAAAA_AAAA_AAAA_AAAA,
            0x0000_0000_0000_0001,
        ];
        for mask in [!0u64, 0xFFFF, 0x8000_0000_0000_0001, 0b1010101] {
            let classes = LaneClasses::partition(&words, mask);
            assert_same_partition(&classes, &brute_partition(&words, mask), "mask {mask:#x}");
            // Disjointness + coverage.
            let mut seen = 0u64;
            for &c in classes.classes() {
                assert_ne!(c, 0);
                assert_eq!(seen & c, 0, "classes overlap");
                seen |= c;
            }
            assert_eq!(seen, mask, "classes cover the active mask");
        }
    }

    proptest! {
        #[test]
        fn partition_matches_brute_force(
            words in proptest::collection::vec(any::<u64>(), 0..12),
            mask in any::<u64>(),
        ) {
            let classes = LaneClasses::partition(&words, mask);
            assert_same_partition(&classes, &brute_partition(&words, mask), "proptest");
        }
    }

    fn node(name: &str, lon: f64) -> NodeInfo {
        NodeInfo {
            name: name.into(),
            location: GeoPoint::new(0.0, lon).unwrap(),
            country: "AA".into(),
            role: NodeRole::LandingPoint,
        }
    }

    /// A 5-node path A-B-C-D-E over four single-segment cables.
    fn path_net() -> Network {
        let mut net = Network::new(NetworkKind::Submarine);
        let ids: Vec<_> = (0..5)
            .map(|i| net.add_node(node(&format!("N{i}"), i as f64)))
            .collect();
        for w in ids.windows(2) {
            net.add_cable(
                &format!("c{}", w[0].0),
                vec![SegmentSpec {
                    a: w[0],
                    b: w[1],
                    route: None,
                    length_km: Some(1000.0),
                }],
            )
            .unwrap();
        }
        net
    }

    #[test]
    fn component_count_lanes_matches_scalar_union_find() {
        let net = path_net();
        let conn = net.connectivity();
        let mut uf = UnionFind::new();
        // 16 lanes enumerating every dead-set of the 4-cable path.
        let mut lane_words = vec![0u64; 4];
        for lane in 0..16u64 {
            for (c, word) in lane_words.iter_mut().enumerate() {
                if (lane >> c) & 1 == 1 {
                    *word |= 1 << lane;
                }
            }
        }
        let mut out = [0usize; 64];
        let distinct = conn.component_count_lanes(&lane_words, 0xFFFF, &mut uf, &mut out);
        assert_eq!(distinct, 16, "all 16 dead-sets are distinct");
        for lane in 0..16 {
            let dead: Vec<bool> = (0..4).map(|c| (lane >> c) & 1 == 1).collect();
            assert_eq!(
                out[lane],
                conn.component_count(&dead, &mut uf),
                "lane {lane} dead {dead:?}"
            );
        }
        assert!(out[16..].iter().all(|&c| c == 0), "masked lanes stay zero");
    }

    #[test]
    fn component_count_lanes_deduplicates() {
        let net = path_net();
        let conn = net.connectivity();
        let mut uf = UnionFind::new();
        let mut out = [0usize; 64];
        // Every lane alive: one distinct class, one union-find run.
        let distinct = conn.component_count_lanes(&[0, 0, 0, 0], !0, &mut uf, &mut out);
        assert_eq!(distinct, 1);
        assert!(out.iter().all(|&c| c == conn.component_count(&[false; 4], &mut uf)));
        // Missing cable words count as dead in every lane.
        let distinct = conn.component_count_lanes(&[], 0b1, &mut uf, &mut out);
        assert_eq!(distinct, 1);
        assert_eq!(out[0], conn.component_count(&[true; 4], &mut uf));
    }
}
