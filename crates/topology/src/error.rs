use std::fmt;

/// Errors produced by graph and network construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A node id referenced a node that does not exist.
    NodeOutOfRange {
        /// Offending index.
        index: usize,
        /// Number of nodes in the graph.
        len: usize,
    },
    /// An edge id referenced an edge that does not exist.
    EdgeOutOfRange {
        /// Offending index.
        index: usize,
        /// Number of edges in the graph.
        len: usize,
    },
    /// A cable needs at least one segment.
    EmptyCable,
    /// A cable id referenced a cable that does not exist.
    CableOutOfRange {
        /// Offending index.
        index: usize,
        /// Number of cables in the network.
        len: usize,
    },
    /// Self-loop segments are not meaningful in a physical cable network.
    SelfLoop {
        /// The node at both ends.
        node: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NodeOutOfRange { index, len } => {
                write!(f, "node index {index} out of range (graph has {len} nodes)")
            }
            TopologyError::EdgeOutOfRange { index, len } => {
                write!(f, "edge index {index} out of range (graph has {len} edges)")
            }
            TopologyError::EmptyCable => write!(f, "cable must have at least one segment"),
            TopologyError::CableOutOfRange { index, len } => {
                write!(
                    f,
                    "cable index {index} out of range (network has {len} cables)"
                )
            }
            TopologyError::SelfLoop { node } => {
                write!(f, "segment connects node {node} to itself")
            }
        }
    }
}

impl std::error::Error for TopologyError {}
