//! Filter-aware graph algorithms.
//!
//! Every traversal takes an `edge_alive` predicate so failure scenarios can
//! be evaluated against one shared immutable [`Graph`] — the Monte Carlo
//! engine runs thousands of scenarios without cloning topologies.

use crate::{EdgeId, Graph, NodeId};
use std::collections::BinaryHeap;

/// Connected components of the subgraph of edges where `edge_alive` holds.
///
/// Returns `labels` where `labels[node] = component index` (component
/// indices are dense, 0-based, assigned in node-id order), plus the number
/// of components. Isolated nodes form singleton components.
pub fn connected_components<N, E>(
    g: &Graph<N, E>,
    mut edge_alive: impl FnMut(EdgeId) -> bool,
) -> (Vec<usize>, usize) {
    const UNVISITED: usize = usize::MAX;
    let mut labels = vec![UNVISITED; g.node_count()];
    let mut next = 0;
    let mut stack = Vec::new();
    for start in g.node_ids() {
        if labels[start.0] != UNVISITED {
            continue;
        }
        labels[start.0] = next;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for &(e, v) in g.neighbors(u) {
                if labels[v.0] == UNVISITED && edge_alive(e) {
                    labels[v.0] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    (labels, next)
}

/// Nodes reachable from `sources` over alive edges (including the sources
/// themselves). Returns a boolean mask indexed by node id.
pub fn reachable_from<N, E>(
    g: &Graph<N, E>,
    sources: &[NodeId],
    mut edge_alive: impl FnMut(EdgeId) -> bool,
) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut stack = Vec::new();
    for &s in sources {
        if s.0 < seen.len() && !seen[s.0] {
            seen[s.0] = true;
            stack.push(s);
        }
    }
    while let Some(u) = stack.pop() {
        for &(e, v) in g.neighbors(u) {
            if !seen[v.0] && edge_alive(e) {
                seen[v.0] = true;
                stack.push(v);
            }
        }
    }
    seen
}

/// True if `a` and `b` are connected over alive edges.
pub fn is_connected<N, E>(
    g: &Graph<N, E>,
    a: NodeId,
    b: NodeId,
    edge_alive: impl FnMut(EdgeId) -> bool,
) -> bool {
    if a.0 >= g.node_count() || b.0 >= g.node_count() {
        return false;
    }
    reachable_from(g, &[a], edge_alive)[b.0]
}

/// Bridges of the alive subgraph: edges whose removal increases the number
/// of connected components. Parallel edges are never bridges.
///
/// Iterative Tarjan lowlink computation; linear in nodes + edges.
pub fn bridges<N, E>(g: &Graph<N, E>, edge_alive: impl Fn(EdgeId) -> bool) -> Vec<EdgeId> {
    let n = g.node_count();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut timer = 0usize;
    let mut out = Vec::new();

    // Count alive multiplicity between unordered pairs to rule parallel
    // edges out as bridges.
    let mut alive_multiplicity = std::collections::HashMap::new();
    for (e, a, b, _) in g.edges() {
        if edge_alive(e) {
            let key = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
            *alive_multiplicity.entry(key).or_insert(0usize) += 1;
        }
    }

    // Iterative DFS: frame = (node, parent_edge, neighbor cursor).
    for start in g.node_ids() {
        if disc[start.0] != usize::MAX {
            continue;
        }
        let mut stack: Vec<(NodeId, Option<EdgeId>, usize)> = vec![(start, None, 0)];
        disc[start.0] = timer;
        low[start.0] = timer;
        timer += 1;
        while let Some(&mut (u, parent_edge, ref mut cursor)) = stack.last_mut() {
            let nbrs = g.neighbors(u);
            if *cursor < nbrs.len() {
                let (e, v) = nbrs[*cursor];
                *cursor += 1;
                if !edge_alive(e) || Some(e) == parent_edge {
                    continue;
                }
                if disc[v.0] == usize::MAX {
                    disc[v.0] = timer;
                    low[v.0] = timer;
                    timer += 1;
                    stack.push((v, Some(e), 0));
                } else {
                    low[u.0] = low[u.0].min(disc[v.0]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _, _)) = stack.last() {
                    low[p.0] = low[p.0].min(low[u.0]);
                    if low[u.0] > disc[p.0] {
                        let pe = parent_edge.expect("non-root has a parent edge");
                        let (a, b) = g.edge_endpoints(pe).expect("edge exists");
                        let key = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
                        if alive_multiplicity.get(&key).copied().unwrap_or(0) == 1 {
                            out.push(pe);
                        }
                    }
                }
            }
        }
    }
    out.sort();
    out
}

/// Articulation points of the alive subgraph: nodes whose removal
/// disconnects their component.
pub fn articulation_points<N, E>(
    g: &Graph<N, E>,
    edge_alive: impl Fn(EdgeId) -> bool,
) -> Vec<NodeId> {
    let n = g.node_count();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0usize;

    for start in g.node_ids() {
        if disc[start.0] != usize::MAX {
            continue;
        }
        let mut root_children = 0usize;
        let mut stack: Vec<(NodeId, Option<EdgeId>, usize)> = vec![(start, None, 0)];
        disc[start.0] = timer;
        low[start.0] = timer;
        timer += 1;
        while let Some(&mut (u, parent_edge, ref mut cursor)) = stack.last_mut() {
            let nbrs = g.neighbors(u);
            if *cursor < nbrs.len() {
                let (e, v) = nbrs[*cursor];
                *cursor += 1;
                if !edge_alive(e) || Some(e) == parent_edge {
                    continue;
                }
                if disc[v.0] == usize::MAX {
                    disc[v.0] = timer;
                    low[v.0] = timer;
                    timer += 1;
                    if u == start {
                        root_children += 1;
                    }
                    stack.push((v, Some(e), 0));
                } else {
                    low[u.0] = low[u.0].min(disc[v.0]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _, _)) = stack.last() {
                    low[p.0] = low[p.0].min(low[u.0]);
                    if p != start && low[u.0] >= disc[p.0] {
                        is_cut[p.0] = true;
                    }
                }
            }
        }
        if root_children > 1 {
            is_cut[start.0] = true;
        }
    }
    (0..n).filter(|&i| is_cut[i]).map(NodeId).collect()
}

/// Dijkstra shortest path over alive edges with non-negative weights.
///
/// Returns `(distance, path_edges)` from `source` to `target`, or `None`
/// when unreachable. `weight` is consulted only for alive edges; negative
/// or non-finite weights are treated as unusable edges.
pub fn shortest_path<N, E>(
    g: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    mut edge_alive: impl FnMut(EdgeId) -> bool,
    mut weight: impl FnMut(EdgeId) -> f64,
) -> Option<(f64, Vec<EdgeId>)> {
    if source.0 >= g.node_count() || target.0 >= g.node_count() {
        return None;
    }
    #[derive(PartialEq)]
    struct Entry {
        dist: f64,
        node: NodeId,
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Min-heap via reversed comparison; distances are finite.
            other
                .dist
                .partial_cmp(&self.dist)
                .unwrap_or(std::cmp::Ordering::Equal)
        }
    }

    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source.0] = 0.0;
    heap.push(Entry {
        dist: 0.0,
        node: source,
    });
    while let Some(Entry { dist: d, node: u }) = heap.pop() {
        if d > dist[u.0] {
            continue;
        }
        if u == target {
            break;
        }
        for &(e, v) in g.neighbors(u) {
            if !edge_alive(e) {
                continue;
            }
            let w = weight(e);
            if !w.is_finite() || w < 0.0 {
                continue;
            }
            let nd = d + w;
            if nd < dist[v.0] {
                dist[v.0] = nd;
                prev[v.0] = Some((u, e));
                heap.push(Entry { dist: nd, node: v });
            }
        }
    }
    if !dist[target.0].is_finite() {
        return None;
    }
    let mut path = Vec::new();
    let mut cur = target;
    while cur != source {
        let (p, e) = prev[cur.0]?;
        path.push(e);
        cur = p;
    }
    path.reverse();
    Some((dist[target.0], path))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the test graph:
    /// ```text
    ///   0 -e0- 1 -e1- 2     5 (isolated)
    ///   |      |
    ///  e2     e3
    ///   |      |
    ///   3 -e4- 4
    /// ```
    fn diamond() -> Graph<(), f64> {
        let mut g = Graph::new();
        let n: Vec<_> = (0..6).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], 1.0).unwrap(); // e0
        g.add_edge(n[1], n[2], 1.0).unwrap(); // e1
        g.add_edge(n[0], n[3], 1.0).unwrap(); // e2
        g.add_edge(n[1], n[4], 1.0).unwrap(); // e3
        g.add_edge(n[3], n[4], 1.0).unwrap(); // e4
        g
    }

    #[test]
    fn components_all_alive() {
        let g = diamond();
        let (labels, count) = connected_components(&g, |_| true);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[4]);
        assert_ne!(labels[0], labels[5]);
    }

    #[test]
    fn components_with_dead_edges() {
        let g = diamond();
        // Kill e0 and e3: {0,3,4} stay connected via e2/e4, {1,2} via e1.
        let dead = [EdgeId(0), EdgeId(3)];
        let (labels, count) = connected_components(&g, |e| !dead.contains(&e));
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn components_no_edges() {
        let g = diamond();
        let (_, count) = connected_components(&g, |_| false);
        assert_eq!(count, 6);
    }

    #[test]
    fn reachability_masks() {
        let g = diamond();
        let seen = reachable_from(&g, &[NodeId(0)], |_| true);
        assert_eq!(seen, vec![true, true, true, true, true, false]);
        let seen2 = reachable_from(&g, &[NodeId(5)], |_| true);
        assert_eq!(seen2.iter().filter(|&&s| s).count(), 1);
        // Multiple sources, duplicate sources, out-of-range tolerated.
        let seen3 = reachable_from(&g, &[NodeId(5), NodeId(5), NodeId(2)], |e| e != EdgeId(1));
        assert!(seen3[5] && seen3[2] && !seen3[1]);
    }

    #[test]
    fn connectivity_queries() {
        let g = diamond();
        assert!(is_connected(&g, NodeId(0), NodeId(2), |_| true));
        assert!(!is_connected(&g, NodeId(0), NodeId(5), |_| true));
        assert!(!is_connected(&g, NodeId(0), NodeId(2), |e| e != EdgeId(1)));
        assert!(!is_connected(&g, NodeId(0), NodeId(99), |_| true));
    }

    #[test]
    fn bridges_in_diamond() {
        let g = diamond();
        // e1 is the only bridge (2 hangs off 1); the 0-1-4-3 cycle has none.
        assert_eq!(bridges(&g, |_| true), vec![EdgeId(1)]);
    }

    #[test]
    fn parallel_edges_are_not_bridges() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(a, b, ()).unwrap();
        let e_single = g.add_edge(b, c, ()).unwrap();
        assert_eq!(bridges(&g, |_| true), vec![e_single]);
    }

    #[test]
    fn bridges_respect_filter() {
        let g = diamond();
        // With e4 dead, the cycle is broken: e0, e2, e3 and e1 all become
        // bridges of the remaining tree.
        let mut bs = bridges(&g, |e| e != EdgeId(4));
        bs.sort();
        assert_eq!(bs, vec![EdgeId(0), EdgeId(1), EdgeId(2), EdgeId(3)]);
    }

    #[test]
    fn articulation_points_in_diamond() {
        let g = diamond();
        // Node 1 separates node 2 from the cycle.
        assert_eq!(articulation_points(&g, |_| true), vec![NodeId(1)]);
    }

    #[test]
    fn articulation_root_with_two_subtrees() {
        // Path 0-1-2: node 1 is a cut vertex (and DFS root cases work).
        let mut g: Graph<(), ()> = Graph::new();
        let n: Vec<_> = (0..3).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ()).unwrap();
        g.add_edge(n[1], n[2], ()).unwrap();
        assert_eq!(articulation_points(&g, |_| true), vec![n[1]]);
    }

    #[test]
    fn shortest_path_prefers_cheap_route() {
        let mut g: Graph<(), f64> = Graph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], 1.0).unwrap();
        g.add_edge(n[1], n[3], 1.0).unwrap();
        let direct = g.add_edge(n[0], n[3], 10.0).unwrap();
        let (d, path) = shortest_path(&g, n[0], n[3], |_| true, |e| *g.edge(e).unwrap()).unwrap();
        assert_eq!(d, 2.0);
        assert_eq!(path.len(), 2);
        // When the cheap route dies, fall back to the direct edge.
        let (d2, path2) =
            shortest_path(&g, n[0], n[3], |e| e != EdgeId(0), |e| *g.edge(e).unwrap()).unwrap();
        assert_eq!(d2, 10.0);
        assert_eq!(path2, vec![direct]);
    }

    #[test]
    fn shortest_path_unreachable_and_degenerate() {
        let g = diamond();
        assert!(shortest_path(&g, NodeId(0), NodeId(5), |_| true, |_| 1.0).is_none());
        let (d, path) = shortest_path(&g, NodeId(2), NodeId(2), |_| true, |_| 1.0).unwrap();
        assert_eq!(d, 0.0);
        assert!(path.is_empty());
        assert!(shortest_path(&g, NodeId(0), NodeId(99), |_| true, |_| 1.0).is_none());
    }

    #[test]
    fn shortest_path_ignores_bad_weights() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, f64::NAN).unwrap();
        let ok = g.add_edge(a, b, 5.0).unwrap();
        let (d, path) = shortest_path(&g, a, b, |_| true, |e| *g.edge(e).unwrap()).unwrap();
        assert_eq!(d, 5.0);
        assert_eq!(path, vec![ok]);
    }
}

/// Minimum edge cut between two node sets over alive edges, treating
/// every alive edge as unit capacity — "how many cable segments must be
/// destroyed to disconnect these regions?"
///
/// Edmonds–Karp on the unit-capacity undirected graph: each undirected
/// edge becomes a pair of directed arcs sharing capacity. Runtime is
/// `O(cut · E)`, fine for the cut sizes cable networks exhibit. Returns
/// `None` when a source is also a sink (infinite cut).
pub fn min_edge_cut<N, E>(
    g: &Graph<N, E>,
    sources: &[NodeId],
    sinks: &[NodeId],
    edge_alive: impl Fn(EdgeId) -> bool,
) -> Option<usize> {
    use std::collections::VecDeque;
    let n = g.node_count();
    let mut is_source = vec![false; n];
    let mut is_sink = vec![false; n];
    for s in sources {
        if s.0 < n {
            is_source[s.0] = true;
        }
    }
    for t in sinks {
        if t.0 < n {
            if is_source[t.0] {
                return None;
            }
            is_sink[t.0] = true;
        }
    }
    if !is_source.iter().any(|&b| b) || !is_sink.iter().any(|&b| b) {
        return Some(0);
    }
    // Residual flow per edge per direction: flow[e] in {-1, 0, +1}
    // relative to the stored (a -> b) orientation.
    let mut flow: Vec<i8> = vec![0; g.edge_count()];
    let mut cut = 0usize;
    loop {
        // BFS from all sources through residual edges.
        let mut prev: Vec<Option<(NodeId, EdgeId, i8)>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        for (i, &s) in is_source.iter().enumerate() {
            if s {
                visited[i] = true;
                queue.push_back(NodeId(i));
            }
        }
        let mut reached: Option<NodeId> = None;
        'bfs: while let Some(u) = queue.pop_front() {
            for &(e, v) in g.neighbors(u) {
                if visited[v.0] || !edge_alive(e) {
                    continue;
                }
                let (a, _) = g.edge_endpoints(e).expect("edge exists");
                // Direction of travel relative to edge orientation.
                let dir: i8 = if a == u { 1 } else { -1 };
                // Residual capacity along dir: 1 - dir*flow >= 1.
                if (dir as i32) * (flow[e.0] as i32) >= 1 {
                    continue; // saturated in this direction
                }
                visited[v.0] = true;
                prev[v.0] = Some((u, e, dir));
                if is_sink[v.0] {
                    reached = Some(v);
                    break 'bfs;
                }
                queue.push_back(v);
            }
        }
        let Some(mut cur) = reached else {
            break;
        };
        // Augment along the path.
        while let Some((p, e, dir)) = prev[cur.0] {
            flow[e.0] += dir;
            cur = p;
            if is_source[cur.0] {
                break;
            }
        }
        cut += 1;
        if cut > g.edge_count() {
            break; // safety net; cannot exceed edge count
        }
    }
    Some(cut)
}

#[cfg(test)]
mod min_cut_tests {
    use super::*;

    #[test]
    fn cut_of_disconnected_pair_is_zero() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        assert_eq!(min_edge_cut(&g, &[a], &[b], |_| true), Some(0));
    }

    #[test]
    fn single_path_cut_is_one() {
        let mut g: Graph<(), ()> = Graph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ()).unwrap();
        g.add_edge(n[1], n[2], ()).unwrap();
        g.add_edge(n[2], n[3], ()).unwrap();
        assert_eq!(min_edge_cut(&g, &[n[0]], &[n[3]], |_| true), Some(1));
    }

    #[test]
    fn parallel_edges_raise_the_cut() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(a, b, ()).unwrap();
        assert_eq!(min_edge_cut(&g, &[a], &[b], |_| true), Some(3));
    }

    #[test]
    fn diamond_cut_is_two() {
        // a -> {b, c} -> d: two edge-disjoint paths.
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(a, c, ()).unwrap();
        g.add_edge(b, d, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        assert_eq!(min_edge_cut(&g, &[a], &[d], |_| true), Some(2));
    }

    #[test]
    fn dead_edges_reduce_the_cut() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let e1 = g.add_edge(a, b, ()).unwrap();
        g.add_edge(a, b, ()).unwrap();
        assert_eq!(min_edge_cut(&g, &[a], &[b], |e| e != e1), Some(1));
    }

    #[test]
    fn multi_source_multi_sink() {
        // Two sources each with an edge into a middle node, which has one
        // edge to the sink: bottleneck 1.
        let mut g: Graph<(), ()> = Graph::new();
        let s1 = g.add_node(());
        let s2 = g.add_node(());
        let m = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s1, m, ()).unwrap();
        g.add_edge(s2, m, ()).unwrap();
        g.add_edge(m, t, ()).unwrap();
        assert_eq!(min_edge_cut(&g, &[s1, s2], &[t], |_| true), Some(1));
    }

    #[test]
    fn overlapping_source_and_sink_is_infinite() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        assert_eq!(min_edge_cut(&g, &[a], &[a], |_| true), None);
    }

    #[test]
    fn cut_matches_known_value_on_cycle() {
        // A cycle of 5 nodes: any two distinct nodes have cut 2.
        let mut g: Graph<(), ()> = Graph::new();
        let n: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        for i in 0..5 {
            g.add_edge(n[i], n[(i + 1) % 5], ()).unwrap();
        }
        assert_eq!(min_edge_cut(&g, &[n[0]], &[n[2]], |_| true), Some(2));
    }
}
