use crate::TopologyError;
use serde::{Deserialize, Serialize};

/// Index of a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Index of an edge in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct EdgeRecord<E> {
    a: NodeId,
    b: NodeId,
    data: E,
}

/// An undirected multigraph stored in arenas, generic over node and edge
/// payloads.
///
/// Parallel edges are first-class: two cities joined by three distinct
/// cables are three edges, and failure analysis must treat them
/// independently. Nodes and edges are never removed — failure scenarios
/// are expressed as *filters* passed to the algorithms in [`crate::algo`],
/// so one immutable topology can serve thousands of Monte Carlo trials
/// concurrently.
///
/// ```
/// use solarstorm_topology::Graph;
/// let mut g: Graph<&str, f64> = Graph::new();
/// let a = g.add_node("Lisbon");
/// let b = g.add_node("Fortaleza");
/// let e = g.add_edge(a, b, 6200.0).unwrap();
/// assert_eq!(g.edge_endpoints(e).unwrap(), (a, b));
/// assert_eq!(g.degree(a), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph<N, E> {
    nodes: Vec<N>,
    edges: Vec<EdgeRecord<E>>,
    /// `adjacency[node] = (edge, neighbor)` pairs.
    adjacency: Vec<Vec<(EdgeId, NodeId)>>,
}

impl<N, E> Default for Graph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> Graph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::new(),
            edges: Vec::new(),
            adjacency: Vec::new(),
        }
    }

    /// Creates an empty graph with reserved capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Graph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            adjacency: Vec::with_capacity(nodes),
        }
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, data: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(data);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected edge between `a` and `b`. Self-loops are
    /// rejected; parallel edges are allowed.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, data: E) -> Result<EdgeId, TopologyError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(TopologyError::SelfLoop { node: a.0 });
        }
        let id = EdgeId(self.edges.len());
        self.edges.push(EdgeRecord { a, b, data });
        self.adjacency[a.0].push((id, b));
        self.adjacency[b.0].push((id, a));
        Ok(id)
    }

    fn check_node(&self, n: NodeId) -> Result<(), TopologyError> {
        if n.0 >= self.nodes.len() {
            Err(TopologyError::NodeOutOfRange {
                index: n.0,
                len: self.nodes.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Payload of a node.
    pub fn node(&self, id: NodeId) -> Option<&N> {
        self.nodes.get(id.0)
    }

    /// Mutable payload of a node.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut N> {
        self.nodes.get_mut(id.0)
    }

    /// Payload of an edge.
    pub fn edge(&self, id: EdgeId) -> Option<&E> {
        self.edges.get(id.0).map(|e| &e.data)
    }

    /// Endpoints of an edge.
    pub fn edge_endpoints(&self, id: EdgeId) -> Option<(NodeId, NodeId)> {
        self.edges.get(id.0).map(|e| (e.a, e.b))
    }

    /// `(edge, neighbor)` pairs incident to `n`. Empty for unknown ids.
    pub fn neighbors(&self, n: NodeId) -> &[(EdgeId, NodeId)] {
        self.adjacency.get(n.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Degree of a node (counting parallel edges).
    pub fn degree(&self, n: NodeId) -> usize {
        self.neighbors(n).len()
    }

    /// Iterates all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterates all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len()).map(EdgeId)
    }

    /// Iterates `(id, payload)` for all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Iterates `(id, a, b, payload)` for all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, &E)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i), e.a, e.b, &e.data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g: Graph<(), ()> = Graph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.node(NodeId(0)).is_none());
        assert!(g.edge(EdgeId(0)).is_none());
        assert_eq!(g.degree(NodeId(5)), 0);
    }

    #[test]
    fn adds_nodes_and_edges() {
        let mut g: Graph<i32, &str> = Graph::new();
        let a = g.add_node(1);
        let b = g.add_node(2);
        let c = g.add_node(3);
        let e1 = g.add_edge(a, b, "ab").unwrap();
        let e2 = g.add_edge(b, c, "bc").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(*g.edge(e1).unwrap(), "ab");
        assert_eq!(g.edge_endpoints(e2).unwrap(), (b, c));
        assert_eq!(g.degree(b), 2);
        assert_eq!(g.neighbors(a), &[(e1, b)]);
    }

    #[test]
    fn supports_parallel_edges() {
        let mut g: Graph<(), u8> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(a, b, 2).unwrap();
        g.add_edge(b, a, 3).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(a), 3);
        assert_eq!(g.degree(b), 3);
    }

    #[test]
    fn rejects_self_loops_and_bad_ids() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        assert_eq!(
            g.add_edge(a, a, ()),
            Err(TopologyError::SelfLoop { node: 0 })
        );
        assert!(matches!(
            g.add_edge(a, NodeId(9), ()),
            Err(TopologyError::NodeOutOfRange { index: 9, len: 1 })
        ));
    }

    #[test]
    fn node_mut_updates_payload() {
        let mut g: Graph<i32, ()> = Graph::new();
        let a = g.add_node(1);
        *g.node_mut(a).unwrap() = 10;
        assert_eq!(*g.node(a).unwrap(), 10);
    }

    #[test]
    fn iterators_cover_everything() {
        let mut g: Graph<u8, u8> = Graph::new();
        let a = g.add_node(0);
        let b = g.add_node(1);
        g.add_edge(a, b, 7).unwrap();
        assert_eq!(g.node_ids().count(), 2);
        assert_eq!(g.edge_ids().count(), 1);
        assert_eq!(g.nodes().map(|(_, n)| *n).sum::<u8>(), 1);
        assert_eq!(g.edges().next().unwrap().3, &7);
    }
}
