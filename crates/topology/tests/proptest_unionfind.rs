//! Property-based equivalence tests: the union-find / CSR connectivity
//! path must agree with the BFS/DFS algorithms in `algo` on random
//! multigraphs and random dead-cable masks.

use proptest::prelude::*;
use solarstorm_geo::GeoPoint;
use solarstorm_topology::{
    algo, Graph, Network, NetworkKind, NodeId, NodeInfo, NodeRole, SegmentSpec, UnionFind,
};

/// A random multigraph mirroring `proptest_graph::arb_graph`.
fn arb_graph() -> impl Strategy<Value = Graph<(), f64>> {
    (2usize..30).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 1.0f64..1000.0), 0..80).prop_map(move |edges| {
            let mut g = Graph::new();
            let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
            for (a, b, w) in edges {
                if a != b {
                    g.add_edge(ids[a], ids[b], w).unwrap();
                }
            }
            g
        })
    })
}

/// A random network: each generated (a, b) pair becomes a one-segment
/// cable, so cable ids and graph edge ids coincide.
fn arb_network() -> impl Strategy<Value = Network> {
    (2usize..25).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..60).prop_map(move |pairs| {
            let mut net = Network::new(NetworkKind::Submarine);
            let ids: Vec<NodeId> = (0..n)
                .map(|i| {
                    net.add_node(NodeInfo {
                        name: format!("n{i}"),
                        location: GeoPoint::new(
                            -60.0 + (i as f64 * 7.0) % 120.0,
                            -170.0 + (i as f64 * 13.0) % 340.0,
                        )
                        .unwrap(),
                        country: "AA".into(),
                        role: NodeRole::LandingPoint,
                    })
                })
                .collect();
            for (k, (a, b)) in pairs.into_iter().enumerate() {
                if a != b {
                    net.add_cable(
                        format!("c{k}"),
                        vec![SegmentSpec {
                            a: ids[a],
                            b: ids[b],
                            route: None,
                            length_km: Some(100.0 + k as f64),
                        }],
                    )
                    .unwrap();
                }
            }
            net
        })
    })
}

/// A dead-cable mask derived from a seed (~30% dead).
fn dead_mask(cables: usize, seed: u64) -> Vec<bool> {
    (0..cables)
        .map(|i| {
            (seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64 * 31))
                % 10
                >= 7
        })
        .collect()
}

/// Packs a boolean mask into the `u64` bitset layout the kernel uses.
fn pack(dead: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; dead.len().div_ceil(64)];
    for (c, &d) in dead.iter().enumerate() {
        if d {
            words[c >> 6] |= 1 << (c & 63);
        }
    }
    words
}

proptest! {
    /// Raw union-find over alive edges reproduces the DFS labelling
    /// exactly (count and per-node labels).
    #[test]
    fn unionfind_matches_connected_components(g in arb_graph(), seed in any::<u64>()) {
        let alive: Vec<bool> = dead_mask(g.edge_count(), seed).iter().map(|&d| !d).collect();
        let (labels, count) = algo::connected_components(&g, |e| alive[e.0]);

        let mut uf = UnionFind::with_capacity(g.node_count());
        for (e, a, b, _) in g.edges() {
            if alive[e.0] {
                uf.union(a.0 as u32, b.0 as u32);
            }
        }
        prop_assert_eq!(uf.component_count(), count);
        let mut uf_labels = Vec::new();
        prop_assert_eq!(uf.labels_into(&mut uf_labels), count);
        prop_assert_eq!(uf_labels, labels);
    }

    /// `same` agrees with BFS reachability from node 0.
    #[test]
    fn unionfind_matches_reachable_from(g in arb_graph(), seed in any::<u64>()) {
        let dead = dead_mask(g.edge_count(), seed);
        let seen = algo::reachable_from(&g, &[NodeId(0)], |e| !dead[e.0]);
        let mut uf = UnionFind::with_capacity(g.node_count());
        for (e, a, b, _) in g.edges() {
            if !dead[e.0] {
                uf.union(a.0 as u32, b.0 as u32);
            }
        }
        for v in g.node_ids() {
            prop_assert_eq!(uf.same(0, v.0 as u32), seen[v.0]);
        }
    }

    /// The CSR component path on `Network` is byte-identical to the DFS
    /// path, for both mask encodings.
    #[test]
    fn csr_components_match_bfs(net in arb_network(), seed in any::<u64>()) {
        let dead = dead_mask(net.cable_count(), seed);
        let expected = algo::connected_components(net.graph(), net.edge_alive(&dead));
        let got = net.surviving_components(&dead);
        prop_assert_eq!(&got.0, &expected.0);
        prop_assert_eq!(got.1, expected.1);

        let conn = net.connectivity();
        let mut uf = UnionFind::new();
        prop_assert_eq!(conn.component_count(&dead, &mut uf), expected.1);
        prop_assert_eq!(
            conn.component_count_words(&pack(&dead), &mut uf),
            expected.1
        );
        prop_assert_eq!(net.surviving_component_count(&dead, &mut uf), expected.1);
    }

    /// The CSR unreachable count agrees with the per-node mask for both
    /// encodings, including short masks (missing cables count as dead).
    #[test]
    fn csr_unreachable_matches_mask(net in arb_network(), seed in any::<u64>(), trim in 0usize..4) {
        let mut dead = dead_mask(net.cable_count(), seed);
        dead.truncate(dead.len().saturating_sub(trim));
        let expected = net
            .unreachable_nodes(&dead)
            .iter()
            .filter(|&&u| u)
            .count();
        let conn = net.connectivity();
        prop_assert_eq!(conn.unreachable_count(&dead), expected);
        if dead.len() == net.cable_count() {
            prop_assert_eq!(conn.unreachable_count_words(&pack(&dead)), expected);
        }
        let pct = net.percent_nodes_unreachable(&dead);
        let node_count = net.node_count();
        prop_assert!((pct - 100.0 * expected as f64 / node_count as f64).abs() < 1e-12);
    }
}
