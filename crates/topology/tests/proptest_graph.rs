//! Property-based tests for graph algorithms on random multigraphs.

use proptest::prelude::*;
use solarstorm_topology::{algo, EdgeId, Graph, NodeId};

/// A random multigraph: `n` nodes, edges as (a, b) index pairs.
fn arb_graph() -> impl Strategy<Value = Graph<(), f64>> {
    (2usize..30).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 1.0f64..1000.0), 0..80).prop_map(move |edges| {
            let mut g = Graph::new();
            let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
            for (a, b, w) in edges {
                if a != b {
                    g.add_edge(ids[a], ids[b], w).unwrap();
                }
            }
            g
        })
    })
}

/// An alive-mask over edges derived from a seed.
fn alive_mask(g: &Graph<(), f64>, seed: u64) -> Vec<bool> {
    (0..g.edge_count())
        .map(|i| {
            (seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64 * 31))
                % 10
                < 7
        })
        .collect()
}

proptest! {
    #[test]
    fn component_labels_are_dense_and_consistent(g in arb_graph(), seed in any::<u64>()) {
        let alive = alive_mask(&g, seed);
        let (labels, count) = algo::connected_components(&g, |e| alive[e.0]);
        prop_assert_eq!(labels.len(), g.node_count());
        // Dense labels.
        for l in &labels {
            prop_assert!(*l < count);
        }
        for c in 0..count {
            prop_assert!(labels.iter().any(|&l| l == c));
        }
        // Alive edges never cross components.
        for (e, a, b, _) in g.edges() {
            if alive[e.0] {
                prop_assert_eq!(labels[a.0], labels[b.0]);
            }
        }
    }

    #[test]
    fn reachability_matches_component_labels(g in arb_graph(), seed in any::<u64>()) {
        let alive = alive_mask(&g, seed);
        let (labels, _) = algo::connected_components(&g, |e| alive[e.0]);
        let src = NodeId(0);
        let seen = algo::reachable_from(&g, &[src], |e| alive[e.0]);
        for v in g.node_ids() {
            prop_assert_eq!(seen[v.0], labels[v.0] == labels[src.0]);
        }
    }

    #[test]
    fn removing_a_bridge_splits_a_component(g in arb_graph()) {
        let (_, before) = algo::connected_components(&g, |_| true);
        for bridge in algo::bridges(&g, |_| true) {
            let (_, after) = algo::connected_components(&g, |e| e != bridge);
            prop_assert_eq!(after, before + 1, "bridge {:?}", bridge);
        }
    }

    #[test]
    fn removing_a_non_bridge_preserves_components(g in arb_graph()) {
        let bridges = algo::bridges(&g, |_| true);
        let (_, before) = algo::connected_components(&g, |_| true);
        for e in g.edge_ids().take(40) {
            if !bridges.contains(&e) {
                let (_, after) = algo::connected_components(&g, |x| x != e);
                prop_assert_eq!(after, before, "edge {:?}", e);
            }
        }
    }

    #[test]
    fn articulation_points_disconnect(g in arb_graph()) {
        let cuts = algo::articulation_points(&g, |_| true);
        let (_, before) = algo::connected_components(&g, |_| true);
        for cut in cuts {
            // Simulate node removal by killing all its incident edges; the
            // removed node becomes isolated (+1 component), so a true cut
            // vertex yields at least +2.
            let incident: Vec<EdgeId> = g.neighbors(cut).iter().map(|&(e, _)| e).collect();
            let (_, after) = algo::connected_components(&g, |e| !incident.contains(&e));
            prop_assert!(
                after >= before + 2,
                "cut {:?}: {} -> {}", cut, before, after
            );
        }
    }

    #[test]
    fn dijkstra_agrees_with_reachability(g in arb_graph(), seed in any::<u64>()) {
        let alive = alive_mask(&g, seed);
        let src = NodeId(0);
        let seen = algo::reachable_from(&g, &[src], |e| alive[e.0]);
        for dst in g.node_ids().take(10) {
            let sp = algo::shortest_path(
                &g, src, dst,
                |e| alive[e.0],
                |e| *g.edge(e).unwrap(),
            );
            prop_assert_eq!(sp.is_some(), seen[dst.0]);
            if let Some((dist, path)) = sp {
                // Path edges sum to the reported distance and form a walk.
                let sum: f64 = path.iter().map(|e| *g.edge(*e).unwrap()).sum();
                prop_assert!((sum - dist).abs() < 1e-9);
                let mut cur = src;
                for e in &path {
                    let (a, b) = g.edge_endpoints(*e).unwrap();
                    prop_assert!(alive[e.0]);
                    cur = if a == cur { b } else { prop_assert_eq!(b, cur); a };
                }
                prop_assert_eq!(cur, dst);
            }
        }
    }

    #[test]
    fn shortest_path_is_minimal_over_two_hops(g in arb_graph()) {
        // Triangle check: d(a,c) <= d(a,b) + d(b,c) for sampled triples.
        let n = g.node_count();
        let d = |x: usize, y: usize| {
            algo::shortest_path(&g, NodeId(x), NodeId(y), |_| true, |e| *g.edge(e).unwrap())
                .map(|(dist, _)| dist)
        };
        for x in 0..n.min(5) {
            for y in 0..n.min(5) {
                for z in 0..n.min(5) {
                    if let (Some(xy), Some(yz), Some(xz)) = (d(x, y), d(y, z), d(x, z)) {
                        prop_assert!(xz <= xy + yz + 1e-9);
                    }
                }
            }
        }
    }
}
