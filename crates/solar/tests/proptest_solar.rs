//! Property-based tests for the solar-activity models.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use solarstorm_solar::{
    decade_probability_of_century_event, ArrivalModel, Cme, SolarCycleModel, StormClass,
};

fn arb_class() -> impl Strategy<Value = StormClass> {
    prop_oneof![
        Just(StormClass::Minor),
        Just(StormClass::Moderate),
        Just(StormClass::Severe),
        Just(StormClass::Extreme),
    ]
}

proptest! {
    #[test]
    fn sunspot_number_nonnegative_and_bounded(year in 1600.0f64..2400.0) {
        let m = SolarCycleModel::calibrated();
        let s = m.sunspot_number(year);
        prop_assert!(s >= 0.0);
        prop_assert!(s <= 265.0 + 1e-9);
    }

    #[test]
    fn cycle_amplitude_within_configured_band(year in 1600.0f64..2400.0) {
        let m = SolarCycleModel::calibrated();
        let a = m.cycle_amplitude(year);
        prop_assert!((66.0 - 1e-9..=265.0 + 1e-9).contains(&a));
    }

    #[test]
    fn transit_time_monotone_in_speed(s1 in 100.0f64..=5_000.0, s2 in 100.0f64..=5_000.0) {
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let slow = Cme::new(StormClass::Moderate, lo).unwrap();
        let fast = Cme::new(StormClass::Moderate, hi).unwrap();
        prop_assert!(fast.transit_hours() <= slow.transit_hours());
    }

    #[test]
    fn lead_time_never_negative(
        class in arb_class(),
        delay in -100.0f64..1_000.0,
    ) {
        let cme = Cme::typical(class);
        prop_assert!(cme.lead_time_hours(delay) >= 0.0);
        prop_assert!(cme.lead_time_hours(delay) <= cme.transit_hours() + 1e-9);
    }

    #[test]
    fn decade_probability_monotone_in_frequency(
        p1 in 1.0f64..10_000.0,
        p2 in 1.0f64..10_000.0,
    ) {
        // Rarer events (longer return period) have lower decade probability.
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let freq = decade_probability_of_century_event(lo).unwrap();
        let rare = decade_probability_of_century_event(hi).unwrap();
        prop_assert!(freq >= rare);
        prop_assert!((0.0..=1.0).contains(&freq));
    }

    #[test]
    fn arrivals_deterministic_and_in_horizon(
        seed in any::<u64>(),
        horizon in 0.0f64..2_000.0,
    ) {
        let m = ArrivalModel::calibrated();
        let a = m.sample_arrivals(&mut ChaCha12Rng::seed_from_u64(seed), 2030.0, horizon).unwrap();
        let b = m.sample_arrivals(&mut ChaCha12Rng::seed_from_u64(seed), 2030.0, horizon).unwrap();
        prop_assert_eq!(&a, &b);
        for arr in &a {
            prop_assert!(arr.year >= 2030.0 && arr.year < 2030.0 + horizon);
        }
        prop_assert!(a.windows(2).all(|w| w[0].year <= w[1].year));
    }

    #[test]
    fn class_mix_sums_to_one_conceptually(seed in any::<u64>()) {
        // sample_class always returns one of the three large classes.
        let m = ArrivalModel::calibrated();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        for _ in 0..50 {
            let c = m.sample_class(&mut rng);
            prop_assert!(matches!(
                c,
                StormClass::Moderate | StormClass::Severe | StormClass::Extreme
            ));
        }
    }

    #[test]
    fn custom_models_respect_probability_bounds(
        impacts in 0.0f64..20.0,
        ef in 0.0f64..=0.5,
        sf in 0.0f64..=0.5,
    ) {
        let m = ArrivalModel::new(impacts, ef, sf, None).unwrap();
        let p = m.extreme_decade_probability();
        prop_assert!((0.0..=1.0).contains(&p));
    }
}
