use crate::SolarError;
use serde::{Deserialize, Serialize};

/// Phase of the ~80–100-year Gleissberg cycle at a given date.
///
/// The Gleissberg cycle modulates the amplitude of individual 11-year
/// cycles by a factor of up to ~4 (McCracken et al. 2004). The paper's core
/// risk argument is that the Internet grew up during a Gleissberg
/// *minimum* — cycles 23 and 24 were unusually weak — and that the Sun is
/// now emerging from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GleissbergPhase {
    /// Near the bottom of the long cycle (amplitude multiplier ≲ 1/2 of max).
    Minimum,
    /// Rising or declining flank.
    Transition,
    /// Near the top of the long cycle.
    Maximum,
}

/// A deterministic model of sunspot number over time: an 11-year activity
/// cycle whose per-cycle amplitude is modulated by the Gleissberg long
/// cycle.
///
/// The model is intentionally simple — a rectified sinusoid for the 11-year
/// cycle and a raised cosine for the long cycle — but it is **calibrated to
/// the observations the paper cites**:
///
/// * cycle 24 (2008–2020) peak sunspot number ≈ 116;
/// * a strong cycle-25 scenario peaking between 210 and 260;
/// * the 20th-century Gleissberg minimum near 1910, with the century's
///   strongest storm a decade later (1921);
/// * amplitude variation by a factor of ~4 across Gleissberg phases.
///
/// ```
/// use solarstorm_solar::SolarCycleModel;
/// let m = SolarCycleModel::calibrated();
/// // Cycle 24 peak (±3 years of 2014) should be weak.
/// let peak24 = (2011..=2017).map(|y| m.sunspot_number(y as f64))
///     .fold(f64::MIN, f64::max);
/// assert!(peak24 < 150.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolarCycleModel {
    /// Length of the activity cycle in years (~11).
    cycle_period_years: f64,
    /// Length of the Gleissberg modulation in years (80–100).
    gleissberg_period_years: f64,
    /// Year of a Gleissberg minimum used as phase anchor (1910 per
    /// Feynman & Ruzmaikin 2014; the 1996–2020 cycles sit near the next
    /// minimum of an ~88-year cycle).
    gleissberg_minimum_year: f64,
    /// Year of an 11-year-cycle minimum used as phase anchor (cycle 24
    /// began in Dec 2008).
    cycle_minimum_year: f64,
    /// Peak sunspot number at Gleissberg maximum.
    max_amplitude: f64,
    /// Peak sunspot number at Gleissberg minimum (max/4 per the factor-of-4
    /// modulation).
    min_amplitude: f64,
}

impl SolarCycleModel {
    /// Model calibrated to the observations cited in §2 of the paper.
    pub fn calibrated() -> Self {
        SolarCycleModel {
            cycle_period_years: 11.0,
            gleissberg_period_years: 88.0,
            // Anchor the Gleissberg phase so that the recent minimum falls
            // at 1998 (between cycles 23 and 24, both part of the extended
            // minimum) — one 88-year period after the 1910 minimum.
            gleissberg_minimum_year: 1998.0,
            cycle_minimum_year: 2008.9,
            max_amplitude: 265.0,
            min_amplitude: 66.0,
        }
    }

    /// Builds a custom model.
    pub fn new(
        cycle_period_years: f64,
        gleissberg_period_years: f64,
        gleissberg_minimum_year: f64,
        cycle_minimum_year: f64,
        max_amplitude: f64,
        min_amplitude: f64,
    ) -> Result<Self, SolarError> {
        for p in [cycle_period_years, gleissberg_period_years] {
            if !p.is_finite() || p <= 0.0 {
                return Err(SolarError::InvalidPeriod(p));
            }
        }
        if !max_amplitude.is_finite() || !min_amplitude.is_finite() || min_amplitude < 0.0 {
            return Err(SolarError::InvalidRate(max_amplitude.min(min_amplitude)));
        }
        if max_amplitude < min_amplitude {
            return Err(SolarError::InvalidRate(max_amplitude));
        }
        Ok(SolarCycleModel {
            cycle_period_years,
            gleissberg_period_years,
            gleissberg_minimum_year,
            cycle_minimum_year,
            max_amplitude,
            min_amplitude,
        })
    }

    /// Amplitude (peak sunspot number) of the 11-year cycle active at
    /// `year`, as set by the Gleissberg modulation.
    pub fn cycle_amplitude(&self, year: f64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * (year - self.gleissberg_minimum_year)
            / self.gleissberg_period_years;
        // Raised cosine: 0 at the minimum year, 1 half a period later.
        let level = 0.5 * (1.0 - phase.cos());
        self.min_amplitude + (self.max_amplitude - self.min_amplitude) * level
    }

    /// Smoothed sunspot number at `year` (fractional years allowed).
    ///
    /// The 11-year cycle is modeled as a rectified sinusoid rising from the
    /// anchored minimum; sunspot number is zero only at exact minima.
    pub fn sunspot_number(&self, year: f64) -> f64 {
        let phase =
            std::f64::consts::PI * (year - self.cycle_minimum_year) / self.cycle_period_years;
        let envelope = phase.sin().abs();
        self.cycle_amplitude(year) * envelope
    }

    /// Gleissberg phase classification at `year`.
    pub fn gleissberg_phase(&self, year: f64) -> GleissbergPhase {
        let amp = self.cycle_amplitude(year);
        let span = self.max_amplitude - self.min_amplitude;
        let level = if span == 0.0 {
            1.0
        } else {
            (amp - self.min_amplitude) / span
        };
        if level < 0.25 {
            GleissbergPhase::Minimum
        } else if level > 0.75 {
            GleissbergPhase::Maximum
        } else {
            GleissbergPhase::Transition
        }
    }

    /// Relative CME-production rate at `year`, normalized so the long-run
    /// mean over a full Gleissberg period is 1. CMEs originate near
    /// sunspots, so the rate tracks sunspot number.
    pub fn relative_cme_rate(&self, year: f64) -> f64 {
        // Mean of |sin| over a period is 2/π; mean Gleissberg level is the
        // midpoint amplitude.
        let mean = (self.max_amplitude + self.min_amplitude) / 2.0 * (2.0 / std::f64::consts::PI);
        self.sunspot_number(year) / mean
    }

    /// The 11-year period used by the model.
    pub fn cycle_period_years(&self) -> f64 {
        self.cycle_period_years
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(SolarCycleModel::new(0.0, 88.0, 1998.0, 2008.9, 265.0, 66.0).is_err());
        assert!(SolarCycleModel::new(11.0, -1.0, 1998.0, 2008.9, 265.0, 66.0).is_err());
        assert!(SolarCycleModel::new(11.0, 88.0, 1998.0, 2008.9, 50.0, 66.0).is_err());
        assert!(SolarCycleModel::new(11.0, 88.0, 1998.0, 2008.9, f64::NAN, 66.0).is_err());
    }

    #[test]
    fn cycle24_is_weak() {
        let m = SolarCycleModel::calibrated();
        let peak: f64 = (0..=120)
            .map(|i| m.sunspot_number(2009.0 + i as f64 / 10.0))
            .fold(f64::MIN, f64::max);
        assert!(
            (90.0..150.0).contains(&peak),
            "cycle 24 peak {peak} should be near 116"
        );
    }

    #[test]
    fn amplitude_modulation_is_about_factor_four() {
        let m = SolarCycleModel::calibrated();
        let ratio = m.max_amplitude / m.min_amplitude;
        assert!((3.5..4.6).contains(&ratio));
    }

    #[test]
    fn sunspots_vanish_at_cycle_minimum() {
        let m = SolarCycleModel::calibrated();
        assert!(m.sunspot_number(2008.9) < 1e-9);
        assert!(m.sunspot_number(2008.9 + 11.0) < 1e-9);
    }

    #[test]
    fn sunspot_number_is_nonnegative() {
        let m = SolarCycleModel::calibrated();
        for i in 0..2000 {
            let y = 1850.0 + i as f64 * 0.1;
            assert!(m.sunspot_number(y) >= 0.0, "year {y}");
        }
    }

    #[test]
    fn gleissberg_minimum_classified_near_anchor() {
        let m = SolarCycleModel::calibrated();
        assert_eq!(m.gleissberg_phase(1998.0), GleissbergPhase::Minimum);
        assert_eq!(m.gleissberg_phase(1998.0 + 44.0), GleissbergPhase::Maximum);
    }

    #[test]
    fn strong_cycle_possible_mid_century() {
        // As the Sun leaves the Gleissberg minimum, peaks should be able to
        // reach the 210–260 strong-cycle-25-scenario range within a couple
        // of decades (the paper's "near future" risk window).
        let m = SolarCycleModel::calibrated();
        let peak: f64 = (0..400)
            .map(|i| m.sunspot_number(2020.0 + i as f64 * 0.1))
            .fold(f64::MIN, f64::max);
        assert!(peak > 180.0, "peak over 2020-2060 was only {peak}");
    }

    #[test]
    fn relative_rate_long_run_mean_is_one() {
        let m = SolarCycleModel::calibrated();
        let n = 88_000;
        let mean: f64 = (0..n)
            .map(|i| m.relative_cme_rate(1910.0 + i as f64 * 88.0 / n as f64))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }
}
