//! Historical space-weather events anchoring the models (§2.2 of the
//! paper).

use crate::{Cme, StormClass};
use serde::{Deserialize, Serialize};

/// A historical (or near-miss) CME event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoricalEvent {
    /// Conventional name.
    pub name: &'static str,
    /// Calendar year.
    pub year: i32,
    /// Storm class on this toolkit's scale.
    pub class: StormClass,
    /// Sun-to-Earth transit time in hours, where recorded.
    pub transit_hours: Option<f64>,
    /// Whether the CME actually struck the Earth.
    pub struck_earth: bool,
    /// One-line impact summary from the historical record.
    pub impact: &'static str,
}

impl HistoricalEvent {
    /// Reconstructs a [`Cme`] for this event (using the recorded transit
    /// time where available, otherwise the class-typical speed).
    pub fn to_cme(&self) -> Cme {
        match self.transit_hours {
            Some(h) => {
                let speed = 149_597_870.7 / (h * 3600.0);
                Cme::new(self.class, speed).unwrap_or_else(|_| Cme::typical(self.class))
            }
            None => Cme::typical(self.class),
        }
    }
}

/// The September 1859 Carrington event: telegraph fires, operators shocked,
/// messages sent on induced current alone. Fastest recorded transit.
pub fn carrington_1859() -> HistoricalEvent {
    HistoricalEvent {
        name: "Carrington event",
        year: 1859,
        class: StormClass::Extreme,
        transit_hours: Some(17.6),
        struck_earth: true,
        impact: "large-scale telegraph outages in North America and Europe",
    }
}

/// The May 1921 New York Railroad superstorm — strongest of the 20th
/// century, a decade after the 1910 Gleissberg minimum.
pub fn new_york_railroad_1921() -> HistoricalEvent {
    HistoricalEvent {
        name: "New York Railroad superstorm",
        year: 1921,
        class: StormClass::Severe,
        transit_hours: None,
        struck_earth: true,
        impact: "widespread telegraph/railroad damage across the globe",
    }
}

/// The March 1989 storm: Quebec grid collapse, 200+ US grid incidents,
/// measurable potential swings on the sole transatlantic cable. About one
/// tenth the 1921 storm's strength.
pub fn quebec_1989() -> HistoricalEvent {
    HistoricalEvent {
        name: "Quebec storm",
        year: 1989,
        class: StormClass::Moderate,
        transit_hours: Some(42.0),
        struck_earth: true,
        impact: "Hydro-Quebec collapse; potentials observed on the AT&T NJ-UK cable",
    }
}

/// The July 2012 Carrington-scale CME that crossed Earth's orbit a week
/// from where the planet was — the paper's "near miss".
pub fn near_miss_2012() -> HistoricalEvent {
    HistoricalEvent {
        name: "July 2012 near miss",
        year: 2012,
        class: StormClass::Extreme,
        transit_hours: Some(19.0),
        struck_earth: false,
        impact: "missed the Earth by about one week of orbital position",
    }
}

/// All catalog events, oldest first.
pub fn all() -> Vec<HistoricalEvent> {
    vec![
        carrington_1859(),
        new_york_railroad_1921(),
        quebec_1989(),
        near_miss_2012(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_chronological_and_complete() {
        let events = all();
        assert_eq!(events.len(), 4);
        assert!(events.windows(2).all(|w| w[0].year <= w[1].year));
    }

    #[test]
    fn carrington_cme_matches_recorded_transit() {
        let cme = carrington_1859().to_cme();
        assert!((cme.transit_hours() - 17.6).abs() < 0.01);
        assert_eq!(cme.class(), StormClass::Extreme);
    }

    #[test]
    fn only_2012_missed() {
        let misses: Vec<_> = all().into_iter().filter(|e| !e.struck_earth).collect();
        assert_eq!(misses.len(), 1);
        assert_eq!(misses[0].year, 2012);
    }

    #[test]
    fn classes_match_history() {
        assert_eq!(quebec_1989().class, StormClass::Moderate);
        assert_eq!(new_york_railroad_1921().class, StormClass::Severe);
        assert_eq!(carrington_1859().class, StormClass::Extreme);
    }

    #[test]
    fn events_without_transit_fall_back_to_typical() {
        let cme = new_york_railroad_1921().to_cme();
        assert_eq!(
            cme.speed_km_s(),
            Cme::typical(StormClass::Severe).speed_km_s()
        );
    }
}
