use crate::{SolarCycleModel, SolarError, StormClass};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Per-decade probability of at least one occurrence of an event whose
/// long-run frequency is once per `return_period_years`, under a Bernoulli
/// model with independent years.
///
/// The paper's §2.3 sanity check: "the probability of occurrence per decade
/// of a once-in-a-100-years event is 9 %".
///
/// ```
/// use solarstorm_solar::decade_probability_of_century_event;
/// let p = decade_probability_of_century_event(100.0).unwrap();
/// assert!((p - 0.0956).abs() < 0.001); // ≈ 9%, rounded down in the paper
/// ```
pub fn decade_probability_of_century_event(return_period_years: f64) -> Result<f64, SolarError> {
    if !return_period_years.is_finite() || return_period_years <= 0.0 {
        return Err(SolarError::InvalidPeriod(return_period_years));
    }
    let annual = 1.0 / return_period_years;
    Ok(1.0 - (1.0 - annual.min(1.0)).powi(10))
}

/// Samples the arrival of direct-impact CME events over long horizons.
///
/// Two nested processes:
///
/// 1. **Direct impacts of any large class** arrive as a Poisson process
///    whose base rate comes from the per-century direct-impact frequency
///    (2.6–5.2 per century in the paper's cited estimates), optionally
///    modulated in time by a [`SolarCycleModel`] (CMEs track sunspots).
/// 2. **Class assignment** makes Carrington-scale (Extreme) events the
///    configured fraction of impacts so that the per-decade extreme-event
///    probability lands in the paper's 1.6–12 % window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrivalModel {
    impacts_per_century: f64,
    extreme_fraction: f64,
    severe_fraction: f64,
    #[serde(default)]
    cycle: Option<SolarCycleModel>,
}

/// A sampled storm arrival.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// Decimal year of impact.
    pub year: f64,
    /// Sampled storm class.
    pub class: StormClass,
}

impl ArrivalModel {
    /// Mid-range calibration: 3.9 direct impacts per century (midpoint of
    /// 2.6–5.2), 12 % of them extreme — yielding a per-decade extreme
    /// probability of ≈ 4.6 %, inside the paper's 1.6–12 % window.
    pub fn calibrated() -> Self {
        ArrivalModel {
            impacts_per_century: 3.9,
            extreme_fraction: 0.12,
            severe_fraction: 0.30,
            cycle: Some(SolarCycleModel::calibrated()),
        }
    }

    /// Custom model. `extreme_fraction + severe_fraction` must stay ≤ 1;
    /// the remainder of impacts are Moderate.
    pub fn new(
        impacts_per_century: f64,
        extreme_fraction: f64,
        severe_fraction: f64,
        cycle: Option<SolarCycleModel>,
    ) -> Result<Self, SolarError> {
        if !impacts_per_century.is_finite() || impacts_per_century < 0.0 {
            return Err(SolarError::InvalidRate(impacts_per_century));
        }
        for p in [extreme_fraction, severe_fraction] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(SolarError::InvalidProbability(p));
            }
        }
        if extreme_fraction + severe_fraction > 1.0 {
            return Err(SolarError::InvalidProbability(
                extreme_fraction + severe_fraction,
            ));
        }
        Ok(ArrivalModel {
            impacts_per_century,
            extreme_fraction,
            severe_fraction,
            cycle,
        })
    }

    /// Long-run mean rate of direct impacts per year.
    pub fn annual_rate(&self) -> f64 {
        self.impacts_per_century / 100.0
    }

    /// Probability of at least one **extreme** (Carrington-scale) impact in
    /// a decade, under the Poisson model (no cycle modulation).
    pub fn extreme_decade_probability(&self) -> f64 {
        let lambda = self.annual_rate() * self.extreme_fraction * 10.0;
        1.0 - (-lambda).exp()
    }

    /// Samples impact arrivals on `[start_year, start_year + horizon_years)`.
    ///
    /// Uses thinning when a solar-cycle model is attached: candidate events
    /// from a homogeneous process at the peak rate are accepted with
    /// probability proportional to the cycle's instantaneous relative rate.
    pub fn sample_arrivals<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        start_year: f64,
        horizon_years: f64,
    ) -> Result<Vec<Arrival>, SolarError> {
        if !horizon_years.is_finite() || horizon_years < 0.0 {
            return Err(SolarError::InvalidDuration(horizon_years));
        }
        let base = self.annual_rate();
        let mut out = Vec::new();
        if base == 0.0 || horizon_years == 0.0 {
            return Ok(out);
        }
        // Peak relative rate of the modulated process; |sin| envelope peaks
        // at max amplitude => relative rate max = max_amp / mean.
        let peak_factor = match &self.cycle {
            None => 1.0,
            Some(_) => 3.0, // safe upper bound on relative_cme_rate for the
                            // calibrated model (max ≈ 2.5)
        };
        let lambda_max = base * peak_factor;
        let mut t = start_year;
        loop {
            // Exponential inter-arrival via inverse CDF.
            let u: f64 = rng.random_range(1e-300..1.0);
            t += -u.ln() / lambda_max;
            if t >= start_year + horizon_years {
                break;
            }
            let accept = match &self.cycle {
                None => true,
                Some(c) => {
                    let rel = c.relative_cme_rate(t).min(peak_factor);
                    rng.random_bool((rel / peak_factor).clamp(0.0, 1.0))
                }
            };
            if accept {
                out.push(Arrival {
                    year: t,
                    class: self.sample_class(rng),
                });
            }
        }
        Ok(out)
    }

    /// Samples a storm class for one impact.
    pub fn sample_class<R: Rng + ?Sized>(&self, rng: &mut R) -> StormClass {
        let u: f64 = rng.random_range(0.0..1.0);
        if u < self.extreme_fraction {
            StormClass::Extreme
        } else if u < self.extreme_fraction + self.severe_fraction {
            StormClass::Severe
        } else {
            StormClass::Moderate
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn century_event_decade_probability_is_nine_percent() {
        let p = decade_probability_of_century_event(100.0).unwrap();
        assert!((p - 0.0956).abs() < 1e-3);
    }

    #[test]
    fn rejects_bad_return_period() {
        assert!(decade_probability_of_century_event(0.0).is_err());
        assert!(decade_probability_of_century_event(-10.0).is_err());
        assert!(decade_probability_of_century_event(f64::NAN).is_err());
    }

    #[test]
    fn calibrated_extreme_probability_in_paper_window() {
        let m = ArrivalModel::calibrated();
        let p = m.extreme_decade_probability();
        assert!(
            (0.016..=0.12).contains(&p),
            "per-decade extreme probability {p} outside paper's 1.6-12% range"
        );
    }

    #[test]
    fn rejects_inconsistent_fractions() {
        assert!(ArrivalModel::new(3.9, 0.7, 0.5, None).is_err());
        assert!(ArrivalModel::new(-1.0, 0.1, 0.1, None).is_err());
        assert!(ArrivalModel::new(3.9, 1.5, 0.0, None).is_err());
    }

    #[test]
    fn arrival_count_matches_rate_without_cycle() {
        let m = ArrivalModel::new(3.9, 0.12, 0.3, None).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let horizon = 100_000.0;
        let arrivals = m.sample_arrivals(&mut rng, 2020.0, horizon).unwrap();
        let per_century = arrivals.len() as f64 / horizon * 100.0;
        assert!(
            (per_century - 3.9).abs() < 0.15,
            "measured {per_century} impacts/century"
        );
    }

    #[test]
    fn cycle_modulation_preserves_mean_rate_roughly() {
        let m = ArrivalModel::calibrated();
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let horizon = 88_000.0; // many Gleissberg periods
        let arrivals = m.sample_arrivals(&mut rng, 1910.0, horizon).unwrap();
        let per_century = arrivals.len() as f64 / horizon * 100.0;
        assert!(
            (per_century - 3.9).abs() < 0.4,
            "measured {per_century} impacts/century"
        );
    }

    #[test]
    fn arrivals_sorted_and_within_horizon() {
        let m = ArrivalModel::calibrated();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let arrivals = m.sample_arrivals(&mut rng, 2020.0, 1000.0).unwrap();
        assert!(arrivals.windows(2).all(|w| w[0].year <= w[1].year));
        assert!(arrivals.iter().all(|a| (2020.0..3020.0).contains(&a.year)));
    }

    #[test]
    fn class_mix_matches_fractions() {
        let m = ArrivalModel::new(3.9, 0.2, 0.3, None).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let n = 100_000;
        let mut extreme = 0;
        let mut severe = 0;
        for _ in 0..n {
            match m.sample_class(&mut rng) {
                StormClass::Extreme => extreme += 1,
                StormClass::Severe => severe += 1,
                _ => {}
            }
        }
        assert!((extreme as f64 / n as f64 - 0.2).abs() < 0.01);
        assert!((severe as f64 / n as f64 - 0.3).abs() < 0.01);
    }

    #[test]
    fn zero_rate_and_zero_horizon_yield_no_arrivals() {
        let m = ArrivalModel::new(0.0, 0.1, 0.1, None).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        assert!(m
            .sample_arrivals(&mut rng, 2020.0, 100.0)
            .unwrap()
            .is_empty());
        let m2 = ArrivalModel::calibrated();
        assert!(m2
            .sample_arrivals(&mut rng, 2020.0, 0.0)
            .unwrap()
            .is_empty());
        assert!(m2.sample_arrivals(&mut rng, 2020.0, -1.0).is_err());
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let m = ArrivalModel::calibrated();
        let a1 = m
            .sample_arrivals(&mut ChaCha12Rng::seed_from_u64(42), 2020.0, 500.0)
            .unwrap();
        let a2 = m
            .sample_arrivals(&mut ChaCha12Rng::seed_from_u64(42), 2020.0, 500.0)
            .unwrap();
        assert_eq!(a1, a2);
    }
}
