use crate::SolarError;
use serde::{Deserialize, Serialize};

/// Distance from the Sun to the Earth in kilometres (1 AU).
const AU_KM: f64 = 149_597_870.7;

/// Storm-strength classes used throughout the toolkit.
///
/// The classes are anchored on the historical events in §2.2 of the paper
/// and carry a *field scale*: the amplitude of the induced geoelectric
/// field relative to a Carrington-scale event. The paper notes the 1989
/// Quebec storm was "one-tenth the strength of the 1921 storm", giving the
/// spacing between Moderate and Severe/Extreme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StormClass {
    /// Routine geomagnetic storm; no repeater threat, satellites degrade.
    Minor,
    /// 1989 Quebec-class: grid collapse regionally, measurable potentials
    /// on transatlantic cables (~1/10 of Carrington).
    Moderate,
    /// 1921 New York Railroad-class superstorm.
    Severe,
    /// 1859 Carrington-class: the design-basis catastrophe of the paper.
    Extreme,
}

impl StormClass {
    /// Induced-field amplitude relative to a Carrington-scale event.
    pub fn field_scale(self) -> f64 {
        match self {
            StormClass::Minor => 0.01,
            StormClass::Moderate => 0.1,
            StormClass::Severe => 0.9,
            StormClass::Extreme => 1.0,
        }
    }

    /// Representative Dst (disturbance storm time) index in nanotesla —
    /// the standard geomagnetic storm-intensity scale. Carrington estimates
    /// range −850 to −1760 nT; we adopt point values per class.
    pub fn dst_nt(self) -> f64 {
        match self {
            StormClass::Minor => -100.0,
            StormClass::Moderate => -589.0, // March 1989 measured value
            StormClass::Severe => -907.0,   // May 1921 estimate (Love et al. 2019)
            StormClass::Extreme => -1200.0, // Carrington mid-range estimate
        }
    }

    /// Lowest absolute latitude (degrees) to which strong induced fields
    /// extend for this class. Pulkkinen et al. 2012: the 1989 field dropped
    /// an order of magnitude below 40°; Carrington-era estimates show
    /// strong fields as low as 20°.
    pub fn strong_field_floor_lat_deg(self) -> f64 {
        match self {
            StormClass::Minor => 65.0,
            StormClass::Moderate => 40.0,
            StormClass::Severe => 30.0,
            StormClass::Extreme => 20.0,
        }
    }

    /// All classes, weakest to strongest.
    pub const ALL: [StormClass; 4] = [
        StormClass::Minor,
        StormClass::Moderate,
        StormClass::Severe,
        StormClass::Extreme,
    ];
}

/// A Coronal Mass Ejection: a directional ejection of magnetized plasma.
///
/// Carries the two quantities the downstream models need — the storm class
/// (sets induced-field strength) and the transit speed (sets the warning
/// lead time, §5.2 of the paper: at least 13 hours, typically 1–3 days).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cme {
    class: StormClass,
    speed_km_s: f64,
}

impl Cme {
    /// Creates a CME with the given class and transit speed.
    ///
    /// Speeds outside 100–5000 km/s are rejected: slower clouds dissipate,
    /// faster ones exceed anything observed (Carrington's record transit of
    /// 17.6 h corresponds to ~2360 km/s).
    pub fn new(class: StormClass, speed_km_s: f64) -> Result<Self, SolarError> {
        if !speed_km_s.is_finite() || !(100.0..=5000.0).contains(&speed_km_s) {
            return Err(SolarError::InvalidSpeed { speed_km_s });
        }
        Ok(Cme { class, speed_km_s })
    }

    /// Typical speed for a storm class, from the historical record.
    pub fn typical(class: StormClass) -> Self {
        let speed = match class {
            StormClass::Minor => 450.0,
            StormClass::Moderate => 980.0, // ~42 h transit, like 1989
            StormClass::Severe => 1500.0,  // ~28 h
            StormClass::Extreme => 2360.0, // Carrington's 17.6 h
        };
        Cme {
            class,
            speed_km_s: speed,
        }
    }

    /// Storm class.
    pub fn class(&self) -> StormClass {
        self.class
    }

    /// Transit speed in km/s.
    pub fn speed_km_s(&self) -> f64 {
        self.speed_km_s
    }

    /// Sun-to-Earth transit time in hours — the maximum possible warning
    /// lead time for shutdown planning.
    pub fn transit_hours(&self) -> f64 {
        AU_KM / self.speed_km_s / 3600.0
    }

    /// Warning lead time in hours left after detection latency.
    ///
    /// Sentinel spacecraft (e.g. at L1, plus coronagraph observations)
    /// detect the launch promptly; `detection_delay_hours` models analysis
    /// and alerting latency. Clamped at zero.
    pub fn lead_time_hours(&self, detection_delay_hours: f64) -> f64 {
        (self.transit_hours() - detection_delay_hours.max(0.0)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_scale_is_monotone_in_class() {
        let scales: Vec<f64> = StormClass::ALL.iter().map(|c| c.field_scale()).collect();
        assert!(scales.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn quebec_is_tenth_of_carrington() {
        assert!(
            (StormClass::Moderate.field_scale() / StormClass::Extreme.field_scale() - 0.1).abs()
                < 1e-12
        );
    }

    #[test]
    fn field_floor_descends_with_strength() {
        let floors: Vec<f64> = StormClass::ALL
            .iter()
            .map(|c| c.strong_field_floor_lat_deg())
            .collect();
        assert!(floors.windows(2).all(|w| w[0] > w[1]));
        assert_eq!(StormClass::Extreme.strong_field_floor_lat_deg(), 20.0);
        assert_eq!(StormClass::Moderate.strong_field_floor_lat_deg(), 40.0);
    }

    #[test]
    fn carrington_transit_is_17_6_hours() {
        let cme = Cme::typical(StormClass::Extreme);
        assert!((cme.transit_hours() - 17.6).abs() < 0.3);
    }

    #[test]
    fn transit_times_span_paper_range() {
        // §2.1: 13 hours to five days.
        let fastest = Cme::new(StormClass::Extreme, 3200.0).unwrap();
        let slowest = Cme::new(StormClass::Minor, 350.0).unwrap();
        assert!(fastest.transit_hours() > 12.0);
        assert!(slowest.transit_hours() < 5.0 * 24.0);
    }

    #[test]
    fn rejects_unphysical_speeds() {
        assert!(Cme::new(StormClass::Minor, 50.0).is_err());
        assert!(Cme::new(StormClass::Extreme, 9000.0).is_err());
        assert!(Cme::new(StormClass::Extreme, f64::NAN).is_err());
    }

    #[test]
    fn lead_time_subtracts_detection_latency() {
        let cme = Cme::typical(StormClass::Moderate);
        let full = cme.transit_hours();
        assert!((cme.lead_time_hours(0.0) - full).abs() < 1e-9);
        assert!((cme.lead_time_hours(2.0) - (full - 2.0)).abs() < 1e-9);
        assert_eq!(cme.lead_time_hours(1e6), 0.0);
        // Negative detection delay is clamped, not credited.
        assert!((cme.lead_time_hours(-5.0) - full).abs() < 1e-9);
    }

    #[test]
    fn dst_deepens_with_class() {
        let dsts: Vec<f64> = StormClass::ALL.iter().map(|c| c.dst_nt()).collect();
        assert!(dsts.windows(2).all(|w| w[0] > w[1]));
    }
}
