use crate::{SolarError, StormClass};
use serde::{Deserialize, Serialize};

/// Time profile of a geomagnetic storm: the Dst (disturbance storm
/// time) index over hours since sudden commencement.
///
/// Real storms share a canonical shape — a small positive sudden-
/// commencement spike as the shock compresses the magnetosphere, a
/// main-phase plunge to the Dst minimum over hours, and an exponential
/// recovery over one to several days. GIC tracks the *rate of change*
/// of the field, so the induced-field weight peaks during the main
/// phase, not at the Dst minimum itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StormProfile {
    /// Storm class (sets the Dst floor).
    pub class: StormClass,
    /// Duration of the sudden-commencement bump, hours.
    pub commencement_hours: f64,
    /// Duration of the main-phase descent, hours.
    pub main_phase_hours: f64,
    /// Recovery e-folding time, hours.
    pub recovery_tau_hours: f64,
}

impl StormProfile {
    /// Canonical profile for a storm class: stronger storms develop
    /// faster and recover more slowly.
    pub fn typical(class: StormClass) -> Self {
        let (main, tau) = match class {
            StormClass::Minor => (8.0, 18.0),
            StormClass::Moderate => (7.0, 24.0),
            StormClass::Severe => (5.0, 36.0),
            StormClass::Extreme => (4.0, 48.0),
        };
        StormProfile {
            class,
            commencement_hours: 1.0,
            main_phase_hours: main,
            recovery_tau_hours: tau,
        }
    }

    /// Custom profile.
    pub fn new(
        class: StormClass,
        commencement_hours: f64,
        main_phase_hours: f64,
        recovery_tau_hours: f64,
    ) -> Result<Self, SolarError> {
        for v in [commencement_hours, main_phase_hours, recovery_tau_hours] {
            if !v.is_finite() || v <= 0.0 {
                return Err(SolarError::InvalidDuration(v));
            }
        }
        Ok(StormProfile {
            class,
            commencement_hours,
            main_phase_hours,
            recovery_tau_hours,
        })
    }

    /// Dst index at `t` hours after commencement, nT.
    pub fn dst_nt(&self, t_hours: f64) -> f64 {
        let floor = self.class.dst_nt();
        if t_hours < 0.0 {
            0.0
        } else if t_hours < self.commencement_hours {
            // Sudden commencement: small positive excursion.
            20.0 * (t_hours / self.commencement_hours)
        } else if t_hours < self.commencement_hours + self.main_phase_hours {
            // Main phase: linear plunge to the floor.
            let f = (t_hours - self.commencement_hours) / self.main_phase_hours;
            20.0 + (floor - 20.0) * f
        } else {
            // Recovery: exponential relaxation toward zero.
            let dt = t_hours - self.commencement_hours - self.main_phase_hours;
            floor * (-dt / self.recovery_tau_hours).exp()
        }
    }

    /// Normalized induced-field weight at `t` hours: proportional to
    /// `|dDst/dt|`, scaled so the main-phase value is 1.
    pub fn field_weight(&self, t_hours: f64) -> f64 {
        let main_rate = (self.class.dst_nt() - 20.0).abs() / self.main_phase_hours;
        if main_rate == 0.0 {
            return 0.0;
        }
        let h = 0.05;
        let rate = (self.dst_nt(t_hours + h) - self.dst_nt(t_hours - h)).abs() / (2.0 * h);
        (rate / main_rate).clamp(0.0, 1.0)
    }

    /// Total modeled duration: commencement + main phase + five recovery
    /// time constants.
    pub fn duration_hours(&self) -> f64 {
        self.commencement_hours + self.main_phase_hours + 5.0 * self.recovery_tau_hours
    }

    /// Cumulative field weight from 0 to `t` hours, normalized to 1 over
    /// the full duration (trapezoid rule at 0.25 h steps). This is the
    /// fraction of total storm "damage budget" delivered by time `t`.
    pub fn cumulative_weight(&self, t_hours: f64) -> f64 {
        let total = self.integrate_weight(self.duration_hours());
        if total == 0.0 {
            return 0.0;
        }
        (self.integrate_weight(t_hours.clamp(0.0, self.duration_hours())) / total).clamp(0.0, 1.0)
    }

    fn integrate_weight(&self, until: f64) -> f64 {
        let dt = 0.25;
        let mut acc = 0.0;
        let mut t = 0.0;
        while t < until {
            let next = (t + dt).min(until);
            acc += (self.field_weight(t) + self.field_weight(next)) / 2.0 * (next - t);
            t = next;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_durations() {
        assert!(StormProfile::new(StormClass::Severe, 0.0, 5.0, 36.0).is_err());
        assert!(StormProfile::new(StormClass::Severe, 1.0, -5.0, 36.0).is_err());
        assert!(StormProfile::new(StormClass::Severe, 1.0, 5.0, f64::NAN).is_err());
    }

    #[test]
    fn dst_reaches_class_floor_at_end_of_main_phase() {
        for class in StormClass::ALL {
            let p = StormProfile::typical(class);
            let t = p.commencement_hours + p.main_phase_hours;
            assert!(
                (p.dst_nt(t) - class.dst_nt()).abs() < 1.0,
                "{class:?}: {} vs {}",
                p.dst_nt(t),
                class.dst_nt()
            );
        }
    }

    #[test]
    fn dst_is_zero_before_and_recovers_after() {
        let p = StormProfile::typical(StormClass::Severe);
        assert_eq!(p.dst_nt(-1.0), 0.0);
        let end = p.duration_hours();
        assert!(p.dst_nt(end).abs() < 0.05 * p.class.dst_nt().abs());
    }

    #[test]
    fn field_weight_peaks_in_main_phase() {
        let p = StormProfile::typical(StormClass::Extreme);
        let main_mid = p.commencement_hours + p.main_phase_hours / 2.0;
        let recovery = p.commencement_hours + p.main_phase_hours + 10.0;
        assert!((p.field_weight(main_mid) - 1.0).abs() < 0.05);
        assert!(p.field_weight(recovery) < p.field_weight(main_mid));
        assert_eq!(p.field_weight(-5.0), 0.0);
    }

    #[test]
    fn cumulative_weight_is_monotone_to_one() {
        let p = StormProfile::typical(StormClass::Moderate);
        let mut prev = -1e-9;
        for i in 0..=40 {
            let t = p.duration_hours() * i as f64 / 40.0;
            let c = p.cumulative_weight(t);
            assert!(c >= prev - 1e-9, "t={t}");
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
        assert!((p.cumulative_weight(p.duration_hours()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn most_damage_lands_early() {
        // The main phase delivers the bulk of the field-change budget.
        let p = StormProfile::typical(StormClass::Extreme);
        let end_main = p.commencement_hours + p.main_phase_hours;
        assert!(
            p.cumulative_weight(end_main) > 0.35,
            "main phase carries {}",
            p.cumulative_weight(end_main)
        );
    }
}
