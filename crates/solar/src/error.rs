use std::fmt;

/// Errors produced by solar-activity models.
#[derive(Debug, Clone, PartialEq)]
pub enum SolarError {
    /// A probability must lie in `[0, 1]`.
    InvalidProbability(f64),
    /// A rate (events per unit time) must be non-negative and finite.
    InvalidRate(f64),
    /// A duration must be non-negative and finite.
    InvalidDuration(f64),
    /// A cycle period must be strictly positive and finite.
    InvalidPeriod(f64),
    /// CME speed must be within the physically plausible window.
    InvalidSpeed {
        /// Offending speed in km/s.
        speed_km_s: f64,
    },
}

impl fmt::Display for SolarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolarError::InvalidProbability(p) => write!(f, "probability {p} not in [0, 1]"),
            SolarError::InvalidRate(r) => write!(f, "rate {r} must be finite and >= 0"),
            SolarError::InvalidDuration(d) => write!(f, "duration {d} must be finite and >= 0"),
            SolarError::InvalidPeriod(p) => write!(f, "period {p} must be finite and > 0"),
            SolarError::InvalidSpeed { speed_km_s } => {
                write!(f, "CME speed {speed_km_s} km/s outside 100..5000")
            }
        }
    }
}

impl std::error::Error for SolarError {}
