//! Solar-activity substrate for the `solarstorm` toolkit.
//!
//! Models the Sun-side half of the threat analysis in §2 of *Solar
//! Superstorms: Planning for an Internet Apocalypse* (SIGCOMM 2021):
//!
//! * [`SolarCycleModel`] — the ~11-year sunspot cycle modulated by the
//!   80–100-year Gleissberg cycle, calibrated so cycle 24 peaks near 116
//!   sunspots and a strong cycle 25 prediction peaks in the 210–260 range;
//! * [`StormClass`] and [`Cme`] — storm-strength taxonomy (moderate 1989
//!   Quebec-scale through extreme Carrington-scale) with transit-time and
//!   directionality models;
//! * [`catalog`] — the historical events the paper anchors on (1859
//!   Carrington, 1921 New York Railroad, 1989 Quebec, 2012 near miss);
//! * [`ArrivalModel`] — per-decade direct-impact probability (the paper's
//!   1.6 %–12 % range), Bernoulli-decade math, and Poisson/Gleissberg
//!   event-arrival sampling for long-horizon Monte Carlo studies.
//!
//! All sampling takes an explicit [`rand::Rng`] so simulations stay
//! reproducible end-to-end.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod arrival;
pub mod catalog;
mod cycle;
mod error;
mod profile;
mod storm;

pub use arrival::{decade_probability_of_century_event, Arrival, ArrivalModel};
pub use cycle::{GleissbergPhase, SolarCycleModel};
pub use error::SolarError;
pub use profile::StormProfile;
pub use storm::{Cme, StormClass};
