//! Property-based tests for the geodesy substrate.

use proptest::prelude::*;
use solarstorm_geo::{
    destination, haversine_km, initial_bearing_deg, intermediate, GeoPoint, LatitudeBand,
    LatitudeHistogram, Polyline, EARTH_RADIUS_KM,
};

fn arb_point() -> impl Strategy<Value = GeoPoint> {
    (-90.0f64..=90.0, -180.0f64..180.0)
        .prop_map(|(lat, lon)| GeoPoint::new(lat, lon).expect("in-range"))
}

proptest! {
    #[test]
    fn distance_nonnegative_and_bounded(a in arb_point(), b in arb_point()) {
        let d = haversine_km(a, b);
        prop_assert!(d >= 0.0);
        prop_assert!(d <= std::f64::consts::PI * EARTH_RADIUS_KM + 1e-6);
    }

    #[test]
    fn distance_symmetric(a in arb_point(), b in arb_point()) {
        prop_assert!((haversine_km(a, b) - haversine_km(b, a)).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        let ab = haversine_km(a, b);
        let bc = haversine_km(b, c);
        let ac = haversine_km(a, c);
        prop_assert!(ac <= ab + bc + 1e-6, "ac={ac} ab={ab} bc={bc}");
    }

    #[test]
    fn destination_travels_requested_distance(
        a in arb_point(),
        bearing in 0.0f64..360.0,
        dist in 0.0f64..15_000.0,
    ) {
        let b = destination(a, bearing, dist);
        prop_assert!((haversine_km(a, b) - dist).abs() < 0.5);
    }

    #[test]
    fn bearing_in_range(a in arb_point(), b in arb_point()) {
        let brg = initial_bearing_deg(a, b);
        prop_assert!((0.0..360.0).contains(&brg));
    }

    #[test]
    fn intermediate_lies_on_the_arc(a in arb_point(), b in arb_point(), f in 0.0f64..=1.0) {
        let d = haversine_km(a, b);
        // Skip near-antipodal pairs where the arc is ill-conditioned.
        prop_assume!(d < std::f64::consts::PI * EARTH_RADIUS_KM - 50.0);
        let m = intermediate(a, b, f);
        let via = haversine_km(a, m) + haversine_km(m, b);
        prop_assert!((via - d).abs() < 0.5, "via={via} direct={d}");
        prop_assert!((haversine_km(a, m) - f * d).abs() < 0.5);
    }

    #[test]
    fn longitude_always_normalized(lat in -90.0f64..=90.0, lon in -10_000.0f64..10_000.0) {
        let p = GeoPoint::new(lat, lon).unwrap();
        prop_assert!(p.lon_deg() > -180.0 && p.lon_deg() <= 180.0);
    }

    #[test]
    fn band_is_total_and_ordered(lat in -90.0f64..=90.0) {
        let band = LatitudeBand::of_abs_lat(lat);
        let a = lat.abs();
        match band {
            LatitudeBand::Polar => prop_assert!(a > 60.0),
            LatitudeBand::Mid => prop_assert!((40.0..=60.0).contains(&a)),
            LatitudeBand::Equatorial => prop_assert!(a < 40.0),
        }
    }

    #[test]
    fn polyline_length_at_least_endpoint_distance(
        pts in proptest::collection::vec(arb_point(), 2..8)
    ) {
        let line = Polyline::new(pts.clone()).unwrap();
        let direct = haversine_km(pts[0], *pts.last().unwrap());
        prop_assert!(line.length_km() >= direct - 1e-6);
    }

    #[test]
    fn repeater_count_monotone_in_interval(
        a in arb_point(), b in arb_point(),
    ) {
        prop_assume!(haversine_km(a, b) > 1.0);
        let line = Polyline::straight(a, b);
        let n50 = line.repeater_count(50.0).unwrap();
        let n100 = line.repeater_count(100.0).unwrap();
        let n150 = line.repeater_count(150.0).unwrap();
        prop_assert!(n50 >= n100);
        prop_assert!(n100 >= n150);
    }

    #[test]
    fn samples_spaced_by_interval(
        a in arb_point(), b in arb_point(), interval in 50.0f64..200.0,
    ) {
        let d = haversine_km(a, b);
        prop_assume!(d > interval && d < std::f64::consts::PI * EARTH_RADIUS_KM - 100.0);
        let line = Polyline::straight(a, b);
        let samples = line.sample_every_km(interval).unwrap();
        // Consecutive samples along a single great-circle segment are
        // `interval` apart.
        for w in samples.windows(2) {
            prop_assert!((haversine_km(w[0], w[1]) - interval).abs() < 1.0);
        }
    }

    #[test]
    fn histogram_pdf_is_a_distribution(
        lats in proptest::collection::vec(-90.0f64..=90.0, 1..200)
    ) {
        let mut h = LatitudeHistogram::new(2.0).unwrap();
        for l in &lats {
            h.add(*l, 1.0);
        }
        let pdf = h.pdf_percent();
        let sum: f64 = pdf.iter().map(|(_, p)| p).sum();
        prop_assert!((sum - 100.0).abs() < 1e-6);
        prop_assert!(pdf.iter().all(|(_, p)| *p >= 0.0));
    }

    #[test]
    fn percent_above_is_monotone_decreasing(
        lats in proptest::collection::vec(-90.0f64..=90.0, 1..100)
    ) {
        let mut h = LatitudeHistogram::new(1.0).unwrap();
        for l in &lats {
            h.add(*l, 1.0);
        }
        let mut prev = 100.0 + 1e-9;
        for t in 0..=90 {
            let cur = h.percent_above_abs_lat(t as f64);
            prop_assert!(cur <= prev + 1e-9);
            prev = cur;
        }
    }
}
