use std::fmt;

/// Errors produced by geodesy primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// Latitude outside `[-90, +90]` degrees or not finite.
    InvalidLatitude(f64),
    /// Longitude not finite.
    InvalidLongitude(f64),
    /// A polyline needs at least two points to have a length.
    DegeneratePolyline {
        /// Number of points supplied.
        points: usize,
    },
    /// A sampling interval must be strictly positive and finite.
    InvalidInterval(f64),
    /// Histogram bin width must be strictly positive and divide 180 evenly
    /// enough to cover the pole-to-pole range.
    InvalidBinWidth(f64),
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidLatitude(v) => {
                write!(f, "latitude {v} is outside [-90, 90] or not finite")
            }
            GeoError::InvalidLongitude(v) => write!(f, "longitude {v} is not finite"),
            GeoError::DegeneratePolyline { points } => {
                write!(f, "polyline needs at least 2 points, got {points}")
            }
            GeoError::InvalidInterval(v) => {
                write!(f, "sampling interval {v} km must be positive and finite")
            }
            GeoError::InvalidBinWidth(v) => {
                write!(f, "bin width {v} degrees must be positive and finite")
            }
        }
    }
}

impl std::error::Error for GeoError {}
