use crate::{haversine_km, intermediate, GeoError, GeoPoint};
use serde::{Deserialize, Serialize};

/// A geodesic route: an ordered sequence of waypoints joined by great-circle
/// segments.
///
/// Cable routes in the toolkit are polylines. The key operation for the
/// failure models is [`Polyline::sample_every_km`], which walks the route
/// and emits a point every `interval` kilometres — exactly how optical
/// repeaters are spaced along a real cable (every 50–150 km, §3.2 of the
/// paper).
///
/// ```
/// use solarstorm_geo::{GeoPoint, Polyline};
/// let route = Polyline::new(vec![
///     GeoPoint::new(40.5, -69.0).unwrap(),  // off New England
///     GeoPoint::new(49.0, -30.0).unwrap(),  // mid-Atlantic
///     GeoPoint::new(50.0, -5.0).unwrap(),   // off Cornwall
/// ]).unwrap();
/// let repeaters = route.sample_every_km(100.0).unwrap();
/// assert_eq!(repeaters.len(), (route.length_km() / 100.0) as usize);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    points: Vec<GeoPoint>,
}

impl Polyline {
    /// Creates a polyline from at least two waypoints.
    pub fn new(points: Vec<GeoPoint>) -> Result<Self, GeoError> {
        if points.len() < 2 {
            return Err(GeoError::DegeneratePolyline {
                points: points.len(),
            });
        }
        Ok(Polyline { points })
    }

    /// Straight (two-waypoint) route between two endpoints.
    pub fn straight(a: GeoPoint, b: GeoPoint) -> Self {
        Polyline { points: vec![a, b] }
    }

    /// The waypoints of the route.
    pub fn points(&self) -> &[GeoPoint] {
        &self.points
    }

    /// First waypoint.
    pub fn start(&self) -> GeoPoint {
        self.points[0]
    }

    /// Last waypoint.
    pub fn end(&self) -> GeoPoint {
        *self.points.last().expect("polyline has >= 2 points")
    }

    /// Total route length in kilometres (sum of great-circle segments).
    pub fn length_km(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| haversine_km(w[0], w[1]))
            .sum()
    }

    /// Iterates over the `(from, to, length_km)` great-circle segments.
    pub fn segments(&self) -> impl Iterator<Item = (GeoPoint, GeoPoint, f64)> + '_ {
        self.points
            .windows(2)
            .map(|w| (w[0], w[1], haversine_km(w[0], w[1])))
    }

    /// Point at `distance_km` along the route (clamped to the endpoints).
    pub fn point_at_km(&self, distance_km: f64) -> GeoPoint {
        if distance_km <= 0.0 {
            return self.start();
        }
        let mut remaining = distance_km;
        for (from, to, seg_len) in self.segments() {
            if remaining <= seg_len {
                if seg_len == 0.0 {
                    return from;
                }
                return intermediate(from, to, remaining / seg_len);
            }
            remaining -= seg_len;
        }
        self.end()
    }

    /// Positions spaced `interval_km` apart along the route, **excluding**
    /// both endpoints: positions `interval, 2·interval, …` strictly inside
    /// the route. This mirrors repeater placement — landing stations at the
    /// ends house Power Feeding Equipment, not repeaters.
    ///
    /// A route shorter than `interval_km` yields no samples (short cables
    /// need no repeaters, §4.3.1).
    pub fn sample_every_km(&self, interval_km: f64) -> Result<Vec<GeoPoint>, GeoError> {
        if !interval_km.is_finite() || interval_km <= 0.0 {
            return Err(GeoError::InvalidInterval(interval_km));
        }
        let total = self.length_km();
        let count = (total / interval_km).floor() as usize;
        // If the route length is an exact multiple the last sample would sit
        // on the end landing point; drop it.
        let count = if count > 0 && (count as f64) * interval_km >= total - 1e-9 {
            count - 1
        } else {
            count
        };
        let mut out = Vec::with_capacity(count);
        // Walk segments cumulatively instead of calling point_at_km per
        // sample: O(n + k) instead of O(n·k).
        let mut next_at = interval_km;
        let mut walked = 0.0;
        for (from, to, seg_len) in self.segments() {
            while next_at <= walked + seg_len && out.len() < count {
                let f = if seg_len == 0.0 {
                    0.0
                } else {
                    (next_at - walked) / seg_len
                };
                out.push(intermediate(from, to, f));
                next_at += interval_km;
            }
            walked += seg_len;
        }
        Ok(out)
    }

    /// Number of `interval_km`-spaced repeaters this route would carry,
    /// without materializing their positions.
    pub fn repeater_count(&self, interval_km: f64) -> Result<usize, GeoError> {
        if !interval_km.is_finite() || interval_km <= 0.0 {
            return Err(GeoError::InvalidInterval(interval_km));
        }
        let total = self.length_km();
        let count = (total / interval_km).floor() as usize;
        Ok(
            if count > 0 && (count as f64) * interval_km >= total - 1e-9 {
                count - 1
            } else {
                count
            },
        )
    }

    /// Highest absolute latitude reached by any waypoint. The paper assigns
    /// a cable's failure band from the highest-latitude endpoint; with full
    /// routes we can use the highest-latitude waypoint instead.
    pub fn max_abs_lat_deg(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.abs_lat_deg())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn rejects_fewer_than_two_points() {
        assert!(Polyline::new(vec![]).is_err());
        assert!(Polyline::new(vec![p(0.0, 0.0)]).is_err());
    }

    #[test]
    fn length_matches_haversine_for_straight() {
        let a = p(0.0, 0.0);
        let b = p(0.0, 10.0);
        let line = Polyline::straight(a, b);
        assert!((line.length_km() - haversine_km(a, b)).abs() < 1e-9);
    }

    #[test]
    fn length_is_additive_over_waypoints() {
        let a = p(0.0, 0.0);
        let m = p(0.0, 5.0);
        let b = p(0.0, 10.0);
        let via = Polyline::new(vec![a, m, b]).unwrap();
        // Along the equator the midpoint lies on the great circle, so the
        // two-segment route equals the direct route.
        assert!((via.length_km() - haversine_km(a, b)).abs() < 1e-6);
    }

    #[test]
    fn point_at_km_clamps() {
        let line = Polyline::straight(p(0.0, 0.0), p(0.0, 1.0));
        assert_eq!(line.point_at_km(-5.0), line.start());
        assert_eq!(line.point_at_km(1e9), line.end());
    }

    #[test]
    fn sampling_excludes_endpoints() {
        let line = Polyline::straight(p(0.0, 0.0), p(0.0, 8.5)); // ~945 km
        let len = line.length_km();
        let samples = line.sample_every_km(100.0).unwrap();
        assert_eq!(samples.len(), (len / 100.0).floor() as usize);
        for s in &samples {
            assert!(haversine_km(*s, line.start()) > 1.0);
            assert!(haversine_km(*s, line.end()) > 1.0);
        }
    }

    #[test]
    fn short_route_has_no_repeaters() {
        let line = Polyline::straight(p(0.0, 0.0), p(0.0, 1.0)); // ~111 km
        assert!(line.sample_every_km(150.0).unwrap().is_empty());
        assert_eq!(line.repeater_count(150.0).unwrap(), 0);
    }

    #[test]
    fn exact_multiple_drops_terminal_sample() {
        // Construct a route of exactly 300 km and sample at 100 km: samples
        // at 100 and 200 only, not at 300 (the landing point).
        let a = p(0.0, 0.0);
        let b = crate::destination(a, 90.0, 300.0);
        let line = Polyline::straight(a, b);
        let samples = line.sample_every_km(100.0).unwrap();
        assert_eq!(samples.len(), 2);
    }

    #[test]
    fn repeater_count_matches_sample_len() {
        let routes = [
            Polyline::straight(p(0.0, 0.0), p(0.0, 50.0)),
            Polyline::new(vec![p(0.0, 0.0), p(20.0, 30.0), p(-10.0, 60.0)]).unwrap(),
            Polyline::straight(p(60.0, 0.0), p(61.0, 1.0)),
        ];
        for r in &routes {
            for interval in [50.0, 100.0, 150.0] {
                assert_eq!(
                    r.repeater_count(interval).unwrap(),
                    r.sample_every_km(interval).unwrap().len(),
                    "route len {} interval {}",
                    r.length_km(),
                    interval
                );
            }
        }
    }

    #[test]
    fn invalid_interval_rejected() {
        let line = Polyline::straight(p(0.0, 0.0), p(0.0, 10.0));
        assert!(line.sample_every_km(0.0).is_err());
        assert!(line.sample_every_km(-1.0).is_err());
        assert!(line.sample_every_km(f64::NAN).is_err());
    }

    #[test]
    fn max_abs_lat_uses_waypoints() {
        let line = Polyline::new(vec![p(10.0, 0.0), p(-65.0, 10.0), p(20.0, 20.0)]).unwrap();
        assert_eq!(line.max_abs_lat_deg(), 65.0);
    }
}
