use crate::GeoError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A point on the Earth's surface, in degrees.
///
/// Latitude is constrained to `[-90, +90]`; longitude is normalized to
/// `(-180, +180]` on construction so that two representations of the same
/// meridian compare equal.
///
/// ```
/// use solarstorm_geo::GeoPoint;
/// let ny = GeoPoint::new(40.71, -74.01).unwrap();
/// assert!(ny.is_northern());
/// assert_eq!(GeoPoint::new(0.0, 270.0).unwrap().lon_deg(), -90.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "RawPoint", into = "RawPoint")]
pub struct GeoPoint {
    lat_deg: f64,
    lon_deg: f64,
}

/// Serde proxy so deserialized points still go through validation.
#[derive(Serialize, Deserialize)]
struct RawPoint {
    lat: f64,
    lon: f64,
}

impl TryFrom<RawPoint> for GeoPoint {
    type Error = GeoError;
    fn try_from(raw: RawPoint) -> Result<Self, Self::Error> {
        GeoPoint::new(raw.lat, raw.lon)
    }
}

impl From<GeoPoint> for RawPoint {
    fn from(p: GeoPoint) -> Self {
        RawPoint {
            lat: p.lat_deg,
            lon: p.lon_deg,
        }
    }
}

impl GeoPoint {
    /// Creates a validated point. Longitude is normalized to `(-180, 180]`.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Result<Self, GeoError> {
        if !lat_deg.is_finite() || !(-90.0..=90.0).contains(&lat_deg) {
            return Err(GeoError::InvalidLatitude(lat_deg));
        }
        if !lon_deg.is_finite() {
            return Err(GeoError::InvalidLongitude(lon_deg));
        }
        Ok(GeoPoint {
            lat_deg,
            lon_deg: normalize_lon(lon_deg),
        })
    }

    /// Latitude in degrees, in `[-90, +90]`.
    pub fn lat_deg(&self) -> f64 {
        self.lat_deg
    }

    /// Longitude in degrees, normalized to `(-180, +180]`.
    pub fn lon_deg(&self) -> f64 {
        self.lon_deg
    }

    /// Latitude in radians.
    pub fn lat_rad(&self) -> f64 {
        self.lat_deg.to_radians()
    }

    /// Longitude in radians.
    pub fn lon_rad(&self) -> f64 {
        self.lon_deg.to_radians()
    }

    /// Absolute latitude in degrees — the quantity geomagnetic risk depends
    /// on (the paper treats 40°N and 40°S symmetrically).
    pub fn abs_lat_deg(&self) -> f64 {
        self.lat_deg.abs()
    }

    /// True if the point lies strictly north of the equator.
    pub fn is_northern(&self) -> bool {
        self.lat_deg > 0.0
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = if self.lat_deg >= 0.0 { 'N' } else { 'S' };
        let ew = if self.lon_deg >= 0.0 { 'E' } else { 'W' };
        write!(
            f,
            "{:.4}°{} {:.4}°{}",
            self.lat_deg.abs(),
            ns,
            self.lon_deg.abs(),
            ew
        )
    }
}

/// Normalizes a longitude in degrees to `(-180, +180]`.
fn normalize_lon(lon: f64) -> f64 {
    let mut l = (lon + 180.0).rem_euclid(360.0);
    if l == 0.0 {
        l = 360.0; // map -180 to +180
    }
    l - 180.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range_latitude() {
        assert!(GeoPoint::new(90.01, 0.0).is_err());
        assert!(GeoPoint::new(-91.0, 0.0).is_err());
        assert!(GeoPoint::new(f64::NAN, 0.0).is_err());
        assert!(GeoPoint::new(f64::INFINITY, 0.0).is_err());
    }

    #[test]
    fn rejects_non_finite_longitude() {
        assert!(GeoPoint::new(0.0, f64::NAN).is_err());
        assert!(GeoPoint::new(0.0, f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn accepts_poles_and_dateline() {
        assert!(GeoPoint::new(90.0, 0.0).is_ok());
        assert!(GeoPoint::new(-90.0, 123.0).is_ok());
        assert_eq!(GeoPoint::new(0.0, 180.0).unwrap().lon_deg(), 180.0);
        assert_eq!(GeoPoint::new(0.0, -180.0).unwrap().lon_deg(), 180.0);
    }

    #[test]
    fn normalizes_longitude() {
        assert_eq!(GeoPoint::new(0.0, 360.0).unwrap().lon_deg(), 0.0);
        assert_eq!(GeoPoint::new(0.0, 190.0).unwrap().lon_deg(), -170.0);
        assert_eq!(GeoPoint::new(0.0, -190.0).unwrap().lon_deg(), 170.0);
        assert_eq!(GeoPoint::new(0.0, 540.0).unwrap().lon_deg(), 180.0);
    }

    #[test]
    fn abs_latitude_is_symmetric() {
        let n = GeoPoint::new(45.0, 10.0).unwrap();
        let s = GeoPoint::new(-45.0, 10.0).unwrap();
        assert_eq!(n.abs_lat_deg(), s.abs_lat_deg());
        assert!(n.is_northern());
        assert!(!s.is_northern());
    }

    #[test]
    fn display_formats_hemispheres() {
        let p = GeoPoint::new(-33.86, 151.21).unwrap();
        assert_eq!(format!("{p}"), "33.8600°S 151.2100°E");
    }

    #[test]
    fn serde_round_trip_validates() {
        let p = GeoPoint::new(51.5, -0.12).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: GeoPoint = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
        let bad: Result<GeoPoint, _> = serde_json::from_str(r#"{"lat": 95.0, "lon": 0.0}"#);
        assert!(bad.is_err());
    }
}
