//! Geodesy substrate for the `solarstorm` Internet-resilience toolkit.
//!
//! This crate provides the geographic primitives that every other layer of
//! the toolkit builds on:
//!
//! * [`GeoPoint`] — a validated latitude/longitude pair in degrees;
//! * great-circle math ([`haversine_km`], [`initial_bearing_deg`],
//!   [`destination`], [`intermediate`]) on a spherical Earth model;
//! * [`Polyline`] — a geodesic route (e.g. a submarine-cable path) with
//!   length computation and fixed-interval resampling, used to place
//!   optical repeaters every 50–150 km along a cable;
//! * [`LatitudeBand`] — the three geomagnetic-risk bands the SIGCOMM 2021
//!   paper uses (`|lat| > 60°`, `40°–60°`, `< 40°`);
//! * [`LatitudeHistogram`] — fixed-width latitude binning used for the
//!   probability-density plots (Fig. 3) and threshold curves (Fig. 4).
//!
//! The Earth is modeled as a sphere of radius [`EARTH_RADIUS_KM`]; for the
//! hundreds-to-thousands-of-kilometres cable geometry in this toolkit the
//! spherical error (< 0.5 %) is far below the uncertainty of the failure
//! models layered on top.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bands;
mod coords;
mod distance;
mod error;
mod grid;
mod polyline;

pub use bands::{LatitudeBand, BAND_EDGE_HIGH_DEG, BAND_EDGE_LOW_DEG};
pub use coords::GeoPoint;
pub use distance::{destination, haversine_km, initial_bearing_deg, intermediate, EARTH_RADIUS_KM};
pub use error::GeoError;
pub use grid::{percent_points_above_abs_lat, LatitudeHistogram, LonLatGrid};
pub use polyline::Polyline;
