use crate::GeoPoint;

/// Mean Earth radius in kilometres (IUGG mean radius R₁).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Great-circle distance between two points in kilometres, via the
/// haversine formula.
///
/// The haversine form is numerically stable for the short and antipodal
/// distances that both occur in cable routing.
///
/// ```
/// use solarstorm_geo::{GeoPoint, haversine_km};
/// let ny = GeoPoint::new(40.7128, -74.0060).unwrap();
/// let london = GeoPoint::new(51.5074, -0.1278).unwrap();
/// let d = haversine_km(ny, london);
/// assert!((d - 5570.0).abs() < 20.0); // ~5,570 km
/// ```
pub fn haversine_km(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lat1, lon1) = (a.lat_rad(), a.lon_rad());
    let (lat2, lon2) = (b.lat_rad(), b.lon_rad());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().min(1.0).asin()
}

/// Initial bearing (forward azimuth) from `a` to `b`, in degrees clockwise
/// from true north, in `[0, 360)`.
pub fn initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lat1, lon1) = (a.lat_rad(), a.lon_rad());
    let (lat2, lon2) = (b.lat_rad(), b.lon_rad());
    let dlon = lon2 - lon1;
    let y = dlon.sin() * lat2.cos();
    let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
    (y.atan2(x).to_degrees() + 360.0) % 360.0
}

/// Destination point after travelling `distance_km` from `start` along the
/// great circle with the given initial bearing.
pub fn destination(start: GeoPoint, bearing_deg: f64, distance_km: f64) -> GeoPoint {
    let delta = distance_km / EARTH_RADIUS_KM;
    let theta = bearing_deg.to_radians();
    let lat1 = start.lat_rad();
    let lon1 = start.lon_rad();
    let lat2 = (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos()).asin();
    let lon2 = lon1
        + (theta.sin() * delta.sin() * lat1.cos()).atan2(delta.cos() - lat1.sin() * lat2.sin());
    // asin output is within [-90, 90] and lon is normalized by the
    // constructor, so this cannot fail for finite inputs.
    GeoPoint::new(lat2.to_degrees(), lon2.to_degrees())
        .expect("destination of finite inputs is a valid point")
}

/// Point at fraction `f ∈ [0, 1]` along the great circle from `a` to `b`
/// (spherical linear interpolation).
///
/// For coincident or antipodal endpoints the arc is degenerate; this
/// returns `a` in the coincident case and interpolates through an arbitrary
/// (but deterministic) meridian in the antipodal one.
pub fn intermediate(a: GeoPoint, b: GeoPoint, f: f64) -> GeoPoint {
    let f = f.clamp(0.0, 1.0);
    let d = haversine_km(a, b) / EARTH_RADIUS_KM; // angular distance
    if d < 1e-12 {
        return a;
    }
    let sin_d = d.sin();
    if sin_d.abs() < 1e-12 {
        // Antipodal: fall back to stepping along the initial bearing.
        return destination(a, initial_bearing_deg(a, b), f * d * EARTH_RADIUS_KM);
    }
    let wa = ((1.0 - f) * d).sin() / sin_d;
    let wb = (f * d).sin() / sin_d;
    let (lat1, lon1) = (a.lat_rad(), a.lon_rad());
    let (lat2, lon2) = (b.lat_rad(), b.lon_rad());
    let x = wa * lat1.cos() * lon1.cos() + wb * lat2.cos() * lon2.cos();
    let y = wa * lat1.cos() * lon1.sin() + wb * lat2.cos() * lon2.sin();
    let z = wa * lat1.sin() + wb * lat2.sin();
    let lat = z.atan2((x * x + y * y).sqrt());
    let lon = y.atan2(x);
    GeoPoint::new(lat.to_degrees(), lon.to_degrees())
        .expect("interpolation of valid points is a valid point")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = p(12.34, 56.78);
        assert_eq!(haversine_km(a, a), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = p(40.7, -74.0);
        let b = p(35.7, 139.7);
        assert!((haversine_km(a, b) - haversine_km(b, a)).abs() < 1e-9);
    }

    #[test]
    fn quarter_meridian() {
        // Equator to pole along a meridian is a quarter circumference.
        let d = haversine_km(p(0.0, 0.0), p(90.0, 0.0));
        let expected = std::f64::consts::FRAC_PI_2 * EARTH_RADIUS_KM;
        assert!((d - expected).abs() < 1e-6);
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let d = haversine_km(p(0.0, 0.0), p(0.0, 180.0));
        let expected = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - expected).abs() < 1e-6);
    }

    #[test]
    fn known_city_pairs() {
        // Reference distances from standard great-circle calculators.
        let sfo = p(37.6189, -122.3750);
        let syd = p(-33.9399, 151.1753);
        assert!((haversine_km(sfo, syd) - 11_940.0).abs() < 40.0);
        let sin = p(1.3521, 103.8198);
        let chennai = p(13.0827, 80.2707);
        assert!((haversine_km(sin, chennai) - 2_910.0).abs() < 30.0);
    }

    #[test]
    fn bearing_cardinal_directions() {
        assert!((initial_bearing_deg(p(0.0, 0.0), p(10.0, 0.0)) - 0.0).abs() < 1e-9);
        assert!((initial_bearing_deg(p(0.0, 0.0), p(0.0, 10.0)) - 90.0).abs() < 1e-9);
        assert!((initial_bearing_deg(p(10.0, 0.0), p(0.0, 0.0)) - 180.0).abs() < 1e-9);
        assert!((initial_bearing_deg(p(0.0, 10.0), p(0.0, 0.0)) - 270.0).abs() < 1e-9);
    }

    #[test]
    fn destination_round_trip() {
        let start = p(48.8566, 2.3522);
        let bearing = 222.0;
        let dist = 1234.5;
        let end = destination(start, bearing, dist);
        assert!((haversine_km(start, end) - dist).abs() < 0.01);
    }

    #[test]
    fn intermediate_endpoints_and_midpoint() {
        let a = p(40.7, -74.0);
        let b = p(51.5, -0.1);
        let d = haversine_km(a, b);
        let at0 = intermediate(a, b, 0.0);
        let at1 = intermediate(a, b, 1.0);
        assert!(haversine_km(a, at0) < 1e-6);
        assert!(haversine_km(b, at1) < 1e-6);
        let mid = intermediate(a, b, 0.5);
        assert!((haversine_km(a, mid) - d / 2.0).abs() < 0.01);
        assert!((haversine_km(mid, b) - d / 2.0).abs() < 0.01);
    }

    #[test]
    fn intermediate_clamps_fraction() {
        let a = p(10.0, 10.0);
        let b = p(20.0, 20.0);
        assert!(haversine_km(intermediate(a, b, -0.5), a) < 1e-6);
        assert!(haversine_km(intermediate(a, b, 1.5), b) < 1e-6);
    }
}
