use crate::{GeoError, GeoPoint};
use serde::{Deserialize, Serialize};

/// A fixed-width latitude histogram over `[-90°, +90°]`.
///
/// This is the workhorse behind Fig. 3 of the paper (probability density of
/// submarine endpoints and population over 2° bins) and the latitude
/// threshold curves of Fig. 4. Samples carry a weight so the same type
/// serves both point sets (weight 1 per landing station) and population
/// grids (weight = people per cell).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatitudeHistogram {
    bin_width_deg: f64,
    /// `bins[i]` covers `[-90 + i·w, -90 + (i+1)·w)`; the final bin is
    /// closed at +90.
    bins: Vec<f64>,
    total_weight: f64,
}

impl LatitudeHistogram {
    /// Creates an empty histogram with the given bin width in degrees.
    pub fn new(bin_width_deg: f64) -> Result<Self, GeoError> {
        if !bin_width_deg.is_finite() || bin_width_deg <= 0.0 || bin_width_deg > 180.0 {
            return Err(GeoError::InvalidBinWidth(bin_width_deg));
        }
        let n = (180.0 / bin_width_deg).ceil() as usize;
        Ok(LatitudeHistogram {
            bin_width_deg,
            bins: vec![0.0; n],
            total_weight: 0.0,
        })
    }

    /// Bin width in degrees.
    pub fn bin_width_deg(&self) -> f64 {
        self.bin_width_deg
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True if no weight has been added.
    pub fn is_empty(&self) -> bool {
        self.total_weight == 0.0
    }

    /// Index of the bin containing `lat_deg`.
    fn bin_index(&self, lat_deg: f64) -> usize {
        let idx = ((lat_deg + 90.0) / self.bin_width_deg).floor() as isize;
        idx.clamp(0, self.bins.len() as isize - 1) as usize
    }

    /// Adds `weight` at the given latitude.
    pub fn add(&mut self, lat_deg: f64, weight: f64) {
        let i = self.bin_index(lat_deg.clamp(-90.0, 90.0));
        self.bins[i] += weight;
        self.total_weight += weight;
    }

    /// Adds one unit of weight at each point.
    pub fn add_points<'a>(&mut self, points: impl IntoIterator<Item = &'a GeoPoint>) {
        for p in points {
            self.add(p.lat_deg(), 1.0);
        }
    }

    /// Total accumulated weight.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Probability density function: `(bin_center_lat, percent_of_total)`
    /// per bin — the exact quantity plotted in Fig. 3 ("probability density
    /// function (%)" over 2° intervals).
    pub fn pdf_percent(&self) -> Vec<(f64, f64)> {
        let total = if self.total_weight == 0.0 {
            1.0
        } else {
            self.total_weight
        };
        self.bins
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let center = -90.0 + (i as f64 + 0.5) * self.bin_width_deg;
                (center.min(90.0), 100.0 * w / total)
            })
            .collect()
    }

    /// Fraction (as a percentage) of total weight at absolute latitude
    /// **at or above** `threshold_deg` — the y-axis of Fig. 4.
    pub fn percent_above_abs_lat(&self, threshold_deg: f64) -> f64 {
        if self.total_weight == 0.0 {
            return 0.0;
        }
        let mut above = 0.0;
        for (i, w) in self.bins.iter().enumerate() {
            let lo = -90.0 + i as f64 * self.bin_width_deg;
            let hi = lo + self.bin_width_deg;
            // A bin counts as "above" if its midpoint's |lat| clears the
            // threshold; with the narrow bins used in practice this matches
            // per-point counting to within one bin width.
            let mid = (lo + hi) / 2.0;
            if mid.abs() >= threshold_deg {
                above += w;
            }
        }
        100.0 * above / self.total_weight
    }
}

/// Percentage of points whose absolute latitude is `>= threshold_deg`,
/// computed exactly (no binning). Used for the headline statistics
/// ("31% of submarine endpoints are above 40°").
pub fn percent_points_above_abs_lat(points: &[GeoPoint], threshold_deg: f64) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let above = points
        .iter()
        .filter(|p| p.abs_lat_deg() >= threshold_deg)
        .count();
    100.0 * above as f64 / points.len() as f64
}

/// A coarse longitude × latitude grid holding a weight per cell, used for
/// the gridded-population substitute (NASA SEDAC GPWv4 in the paper) and
/// for population-weighted sampling of synthetic infrastructure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LonLatGrid {
    cell_deg: f64,
    cols: usize,
    rows: usize,
    /// Row-major: `weights[row * cols + col]`, row 0 at −90° latitude.
    weights: Vec<f64>,
}

impl LonLatGrid {
    /// Creates an empty grid with square cells of `cell_deg` degrees.
    pub fn new(cell_deg: f64) -> Result<Self, GeoError> {
        if !cell_deg.is_finite() || cell_deg <= 0.0 || cell_deg > 90.0 {
            return Err(GeoError::InvalidBinWidth(cell_deg));
        }
        let cols = (360.0 / cell_deg).ceil() as usize;
        let rows = (180.0 / cell_deg).ceil() as usize;
        Ok(LonLatGrid {
            cell_deg,
            cols,
            rows,
            weights: vec![0.0; cols * rows],
        })
    }

    /// Cell edge length in degrees.
    pub fn cell_deg(&self) -> f64 {
        self.cell_deg
    }

    /// `(cols, rows)` dimensions.
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    fn cell_of(&self, p: GeoPoint) -> (usize, usize) {
        let col = (((p.lon_deg() + 180.0) / self.cell_deg).floor() as isize)
            .clamp(0, self.cols as isize - 1) as usize;
        let row = (((p.lat_deg() + 90.0) / self.cell_deg).floor() as isize)
            .clamp(0, self.rows as isize - 1) as usize;
        (col, row)
    }

    /// Adds weight at a point.
    pub fn add(&mut self, p: GeoPoint, weight: f64) {
        let (c, r) = self.cell_of(p);
        self.weights[r * self.cols + c] += weight;
    }

    /// Weight in the cell containing `p`.
    pub fn weight_at(&self, p: GeoPoint) -> f64 {
        let (c, r) = self.cell_of(p);
        self.weights[r * self.cols + c]
    }

    /// Total weight over all cells.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Iterates non-empty cells as `(cell_center, weight)`.
    pub fn cells(&self) -> impl Iterator<Item = (GeoPoint, f64)> + '_ {
        self.weights.iter().enumerate().filter_map(move |(i, &w)| {
            if w == 0.0 {
                return None;
            }
            let r = i / self.cols;
            let c = i % self.cols;
            let lat = -90.0 + (r as f64 + 0.5) * self.cell_deg;
            let lon = -180.0 + (c as f64 + 0.5) * self.cell_deg;
            Some((
                GeoPoint::new(lat.min(90.0), lon).expect("cell center is valid"),
                w,
            ))
        })
    }

    /// Collapses the grid to a latitude histogram with `bin_width_deg` bins.
    pub fn latitude_histogram(&self, bin_width_deg: f64) -> Result<LatitudeHistogram, GeoError> {
        let mut h = LatitudeHistogram::new(bin_width_deg)?;
        for (center, w) in self.cells() {
            h.add(center.lat_deg(), w);
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn histogram_rejects_bad_width() {
        assert!(LatitudeHistogram::new(0.0).is_err());
        assert!(LatitudeHistogram::new(-2.0).is_err());
        assert!(LatitudeHistogram::new(f64::NAN).is_err());
        assert!(LatitudeHistogram::new(181.0).is_err());
    }

    #[test]
    fn histogram_pdf_sums_to_100() {
        let mut h = LatitudeHistogram::new(2.0).unwrap();
        for lat in [-89.0, -40.0, 0.0, 12.3, 40.0, 60.0, 89.9, 90.0] {
            h.add(lat, 1.0);
        }
        let sum: f64 = h.pdf_percent().iter().map(|(_, p)| p).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_pole_edge() {
        let mut h = LatitudeHistogram::new(2.0).unwrap();
        h.add(90.0, 1.0);
        h.add(-90.0, 1.0);
        assert_eq!(h.total_weight(), 2.0);
        assert_eq!(h.len(), 90);
    }

    #[test]
    fn percent_above_threshold_counts_both_hemispheres() {
        let pts = vec![p(50.0, 0.0), p(-50.0, 0.0), p(10.0, 0.0), p(-10.0, 0.0)];
        assert_eq!(percent_points_above_abs_lat(&pts, 40.0), 50.0);
        assert_eq!(percent_points_above_abs_lat(&pts, 0.0), 100.0);
        assert_eq!(percent_points_above_abs_lat(&pts, 60.0), 0.0);
        assert_eq!(percent_points_above_abs_lat(&[], 40.0), 0.0);
    }

    #[test]
    fn binned_percent_tracks_exact_percent() {
        let pts: Vec<GeoPoint> = (0..180).map(|i| p(i as f64 - 89.5, 0.0)).collect();
        let mut h = LatitudeHistogram::new(1.0).unwrap();
        h.add_points(&pts);
        for t in [0.0, 20.0, 40.0, 60.0] {
            let exact = percent_points_above_abs_lat(&pts, t);
            let binned = h.percent_above_abs_lat(t);
            assert!(
                (exact - binned).abs() <= 1.2,
                "t={t}: exact {exact} vs binned {binned}"
            );
        }
    }

    #[test]
    fn grid_accumulates_and_collapses() {
        let mut g = LonLatGrid::new(1.0).unwrap();
        g.add(p(45.5, 10.5), 100.0);
        g.add(p(45.5, 10.6), 50.0); // same cell
        g.add(p(-30.0, -60.0), 25.0);
        assert_eq!(g.weight_at(p(45.5, 10.5)), 150.0);
        assert_eq!(g.total_weight(), 175.0);
        let h = g.latitude_histogram(2.0).unwrap();
        assert!((h.total_weight() - 175.0).abs() < 1e-9);
        assert_eq!(g.cells().count(), 2);
    }

    #[test]
    fn grid_handles_dateline_and_poles() {
        let mut g = LonLatGrid::new(5.0).unwrap();
        g.add(p(90.0, 180.0), 1.0);
        g.add(p(-90.0, -179.99), 1.0);
        assert_eq!(g.total_weight(), 2.0);
    }
}
