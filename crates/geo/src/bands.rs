use serde::{Deserialize, Serialize};

/// Boundary between the mid and polar risk bands, degrees absolute latitude.
pub const BAND_EDGE_HIGH_DEG: f64 = 60.0;
/// Boundary between the equatorial and mid risk bands, degrees absolute
/// latitude. The paper adopts 40° as a conservative threshold from
/// Pulkkinen et al. (100-year GIC scenarios); studies use 40° ± 10°.
pub const BAND_EDGE_LOW_DEG: f64 = 40.0;

/// The three geomagnetic-risk latitude bands of the paper's non-uniform
/// failure models (§4.3.3): repeaters of a cable are assigned a failure
/// probability from the band of the cable's highest-latitude point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LatitudeBand {
    /// `|lat| > 60°` — auroral zone, strongest geomagnetically induced
    /// currents.
    Polar,
    /// `40° ≤ |lat| ≤ 60°` — mid-latitude band reached by strong storms
    /// (the 1989 event's field dropped an order of magnitude below 40°).
    Mid,
    /// `|lat| < 40°` — low-latitude band; GIC occurs but at much lower
    /// magnitude (equatorial-electrojet effects).
    Equatorial,
}

impl LatitudeBand {
    /// Classifies an absolute latitude (degrees) into its band.
    ///
    /// ```
    /// use solarstorm_geo::LatitudeBand;
    /// assert_eq!(LatitudeBand::of_abs_lat(65.0), LatitudeBand::Polar);
    /// assert_eq!(LatitudeBand::of_abs_lat(45.0), LatitudeBand::Mid);
    /// assert_eq!(LatitudeBand::of_abs_lat(5.0), LatitudeBand::Equatorial);
    /// ```
    pub fn of_abs_lat(abs_lat_deg: f64) -> Self {
        let a = abs_lat_deg.abs();
        if a > BAND_EDGE_HIGH_DEG {
            LatitudeBand::Polar
        } else if a >= BAND_EDGE_LOW_DEG {
            LatitudeBand::Mid
        } else {
            LatitudeBand::Equatorial
        }
    }

    /// Index of the band in the paper's `[polar, mid, equatorial]` ordering
    /// used for the S1/S2 probability triples.
    pub fn index(self) -> usize {
        match self {
            LatitudeBand::Polar => 0,
            LatitudeBand::Mid => 1,
            LatitudeBand::Equatorial => 2,
        }
    }

    /// All bands in `[polar, mid, equatorial]` order.
    pub const ALL: [LatitudeBand; 3] = [
        LatitudeBand::Polar,
        LatitudeBand::Mid,
        LatitudeBand::Equatorial,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_inclusive_at_forty_exclusive_at_sixty() {
        // 40 is in the Mid band (paper: "40 < L < 60" vs "L < 40"; we put
        // the measure-zero boundary with the riskier band).
        assert_eq!(LatitudeBand::of_abs_lat(40.0), LatitudeBand::Mid);
        assert_eq!(LatitudeBand::of_abs_lat(39.999), LatitudeBand::Equatorial);
        assert_eq!(LatitudeBand::of_abs_lat(60.0), LatitudeBand::Mid);
        assert_eq!(LatitudeBand::of_abs_lat(60.001), LatitudeBand::Polar);
    }

    #[test]
    fn negative_latitudes_are_symmetric() {
        assert_eq!(LatitudeBand::of_abs_lat(-70.0), LatitudeBand::Polar);
        assert_eq!(LatitudeBand::of_abs_lat(-50.0), LatitudeBand::Mid);
        assert_eq!(LatitudeBand::of_abs_lat(-10.0), LatitudeBand::Equatorial);
    }

    #[test]
    fn indices_match_paper_ordering() {
        assert_eq!(LatitudeBand::Polar.index(), 0);
        assert_eq!(LatitudeBand::Mid.index(), 1);
        assert_eq!(LatitudeBand::Equatorial.index(), 2);
        for (i, b) in LatitudeBand::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
    }
}
