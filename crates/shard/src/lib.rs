//! `solarstorm-shard` — the sharded serving runtime over
//! `solarstorm-engine`.
//!
//! One engine process owns a single global result cache, single-flight
//! table, and job queue; every connection thread contends on the same
//! few locks, and the cache's LRU eviction scan serializes the write
//! path. This crate removes that ceiling by running **N engine shards**
//! behind a consistent-hash [`Router`]:
//!
//! * **Content-hash routing** — a scenario routes by the same FNV-1a
//!   content hash that keys the result cache, so every spec has a
//!   stable *home shard* where its cached result lives. The
//!   [`HashRing`] uses virtual nodes; growing N → N+1 shards remaps
//!   only ~1/(N+1) of keys (property-tested), and only onto the new
//!   shard.
//! * **Shared-nothing writes** — each shard owns its own cache
//!   partition, flight table, bounded queue, and worker slice; shards
//!   never take each other's locks on the write path.
//! * **Hedged reads** — a home-shard cache miss probes sibling caches
//!   read-only before paying for compute, so a result computed
//!   elsewhere (after a busy spillover, or by direct shard access) is
//!   adopted instead of recomputed. Quarantined siblings are skipped.
//! * **Busy spillover** — a `busy` rejection walks up to two live ring
//!   hops before surfacing the most optimistic `retry_after_ms` of the
//!   shards consulted.
//! * **Supervision** — every shard sits behind a sliding-window circuit
//!   breaker feeding a health state machine (`healthy → suspect →
//!   quarantined → probation → healthy`). A tripped shard is ejected
//!   from routing through the [`Router`]'s atomic live mask (its keys
//!   remap to the ring successor — growth run in reverse, nothing else
//!   moves), its failed requests retry once on the live successor with
//!   deterministic jittered backoff, and a supervisor thread respawns
//!   its engine on the preserved cache partition before half-open
//!   probation probes re-admit it. Manifests carry `rerouted_from` /
//!   `health_state` provenance for every diverted request.
//!
//! [`ShardedEngine`] implements `solarstorm_engine::ScenarioService`,
//! so the NDJSON TCP server, `stormsim batch`, and the Prometheus
//! scrape endpoint serve it exactly as they serve a single engine —
//! deadlines, panic isolation, load shedding, and chaos injection all
//! keep working per shard. Results are bit-identical to a single
//! engine's (routing, spillover, retries, and quarantine decide *where*
//! a deterministic computation runs, never *what* it computes); run
//! manifests carry the serving shard and the hedge outcome, and metrics
//! merge into unlabelled totals plus `shard`-labelled series and
//! per-shard supervision gauges/counters.
//!
//! The TCP accept loop is still blocking, thread-per-connection; the
//! [`Router`] is a pure hash → shard function precisely so a
//! readiness-driven reactor can replace that loop later without
//! touching the routing or shard layers.
//!
//! # Example
//!
//! ```
//! use solarstorm_engine::{AnalysisRequest, EngineConfig, ScenarioSpec};
//! use solarstorm_shard::{ShardConfig, ShardedEngine};
//!
//! let sharded = ShardedEngine::new(ShardConfig {
//!     shards: 2,
//!     engine: EngineConfig { workers: 2, ..Default::default() },
//!     ..Default::default()
//! });
//! let spec = ScenarioSpec {
//!     analysis: AnalysisRequest::Sleep { ms: 1 },
//!     ..Default::default()
//! };
//! let cold = sharded.evaluate(&spec).unwrap();
//! let warm = sharded.evaluate(&spec).unwrap();
//! assert!(!cold.cached && warm.cached);
//! assert_eq!(cold.manifest.shard, warm.manifest.shard);
//! sharded.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Same discipline as the engine: the runtime must degrade into typed
// errors, never abort. Tests assert freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod breaker;
mod health;
mod ring;
mod router;
mod sharded;
mod supervisor;

pub use breaker::BreakerConfig;
pub use health::{HealthSnapshot, HealthState};
pub use ring::HashRing;
pub use router::{Router, DEFAULT_REPLICAS};
pub use sharded::{ShardConfig, ShardedEngine, ShardedMetrics};
