//! The supervision thread: periodic sweeps that respawn quarantined
//! shards.
//!
//! Request threads make the *fast* decisions (record outcomes, trip
//! breakers, eject from the live mask — all lock-free or near).
//! Respawning an engine is the slow part — abandon the wedged worker
//! pool, build a fresh one on the preserved cache partition — so it is
//! deferred to this one background thread: each sweep scans every
//! shard's health record, performs any requested respawns, and moves
//! the respawned shards into half-open probation. The thread owns no
//! policy; the state machine lives in [`crate::health`], the sweep body
//! in `Core::sweep_respawns`.

use crate::sharded::Core;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle on the supervision thread. Dropping the owning
/// `ShardedEngine` stops it; `stop` is idempotent.
#[derive(Debug)]
pub(crate) struct Supervisor {
    stop: Arc<AtomicBool>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Supervisor {
    /// A supervisor that never runs (single-shard runtimes, or
    /// `supervise: false`). Quarantined shards then stay quarantined
    /// until manually re-admitted.
    pub(crate) fn disabled() -> Supervisor {
        Supervisor {
            stop: Arc::new(AtomicBool::new(true)),
            handle: Mutex::new(None),
        }
    }

    /// Spawns the sweep thread. `interval` is the pause between
    /// sweeps; recovery latency is at most one interval plus the
    /// respawn itself.
    pub(crate) fn spawn(core: Arc<Core>, interval: Duration) -> Supervisor {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let spawned = std::thread::Builder::new()
            .name("storm-supervisor".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Acquire) {
                    core.sweep_respawns();
                    std::thread::park_timeout(interval);
                }
            });
        match spawned {
            Ok(handle) => Supervisor {
                stop,
                handle: Mutex::new(Some(handle)),
            },
            Err(e) => {
                // No thread: supervision degrades to "quarantine only",
                // the service itself keeps answering.
                eprintln!("stormsim: failed to spawn supervisor thread: {e}");
                Supervisor::disabled()
            }
        }
    }

    /// Signals the sweep loop to exit and joins it. Idempotent; called
    /// from `ShardedEngine::shutdown` and `Drop`.
    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        let handle = match self.handle.lock() {
            Ok(mut guard) => guard.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        };
        if let Some(handle) = handle {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}
