//! The sharded runtime: N engines, one router, hedged reads, busy
//! spillover.

use crate::router::{Router, DEFAULT_REPLICAS};
use solarstorm_engine::{
    Engine, EngineConfig, EngineError, EngineMetrics, Evaluation, FailureReport, HedgeProbe,
    ScenarioResult, ScenarioService, ScenarioSpec,
};
use std::fmt::Write as _;
use std::sync::Arc;

/// Sharded-runtime sizing: how many shards, and the *total* engine
/// budget they divide between them.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of engine shards (clamped to ≥ 1). The default is the
    /// core count, matching the CLI's `--shards` default.
    pub shards: usize,
    /// Total engine budget: `workers`, `queue_cap`, and `cache_cap`
    /// are divided (ceiling) across the shards; deadline and
    /// degraded-mode settings apply to every shard unchanged;
    /// `prewarm` runs once (datasets are process-global).
    pub engine: EngineConfig,
    /// Probe sibling shards' caches (read-only) on a shard-local cache
    /// miss before paying for compute. On by default.
    pub hedged_reads: bool,
    /// Retry a `busy` rejection once on the ring-successor shard
    /// before surfacing it to the client. On by default.
    pub spill_on_busy: bool,
    /// Virtual nodes per shard on the hash ring.
    pub replicas: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ShardConfig {
            shards: cores.max(1),
            engine: EngineConfig::default(),
            hedged_reads: true,
            spill_on_busy: true,
            replicas: DEFAULT_REPLICAS,
        }
    }
}

/// Divides the total engine budget into shard `index`'s slice.
fn shard_engine_config(total: &EngineConfig, shards: usize, index: usize) -> EngineConfig {
    EngineConfig {
        workers: total.workers.div_ceil(shards).max(1),
        queue_cap: total.queue_cap.div_ceil(shards).max(1),
        // Ceiling division preserves 0 (caching disabled) as 0.
        cache_cap: total.cache_cap.div_ceil(shards),
        // Datasets are process-global; one prewarm warms every shard.
        prewarm: if index == 0 { total.prewarm } else { None },
        ..total.clone()
    }
}

/// The hedge: a read-only view over every shard's cache except the
/// probing shard's own (it already missed).
struct SiblingProbe<'a> {
    shards: &'a [Arc<Engine>],
    home: usize,
}

impl HedgeProbe for SiblingProbe<'_> {
    fn probe(&self, hash: u64, canon: &str) -> Option<(u32, Arc<ScenarioResult>)> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != self.home)
            .find_map(|(i, engine)| engine.peek_cache(hash, canon).map(|r| (i as u32, r)))
    }
}

/// N engine shards behind one consistent-hash router.
///
/// Each shard owns its own result cache, single-flight table, queue,
/// and worker slice — shared-nothing on the write path, so shards never
/// contend on each other's locks. Requests route by spec content hash
/// (the same hash the cache uses), which gives every scenario a *home
/// shard*: repeats of a spec always land where its cached result lives.
/// Two read-side escape hatches soften the partitioning:
///
/// * **Hedged reads** — a home-shard cache miss probes the sibling
///   caches read-only before paying for compute, so results computed
///   elsewhere (e.g. after a spillover) are adopted, not recomputed.
/// * **Busy spillover** — a `busy` rejection from the home shard is
///   retried once on the ring-successor shard before the client sees
///   the error.
///
/// Results are bit-identical to a single [`Engine`]'s: routing decides
/// only *where* a deterministic computation runs. Deadlines, panic
/// isolation, load shedding, and chaos injection all operate per shard
/// unchanged.
pub struct ShardedEngine {
    shards: Vec<Arc<Engine>>,
    router: Router,
    hedged_reads: bool,
    spill_on_busy: bool,
}

impl ShardedEngine {
    /// Builds the shards (each starting its own worker pool) and the
    /// router.
    pub fn new(cfg: ShardConfig) -> ShardedEngine {
        let n = cfg.shards.max(1);
        let shards = (0..n)
            .map(|i| Arc::new(Engine::new(shard_engine_config(&cfg.engine, n, i))))
            .collect();
        ShardedEngine {
            shards,
            router: Router::with_replicas(n, cfg.replicas),
            hedged_reads: cfg.hedged_reads,
            spill_on_busy: cfg.spill_on_busy,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The router (exposed for frontends and benchmarks that need to
    /// know a spec's home shard).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The shard engines, indexed as the router numbers them. Intended
    /// for tests and benchmarks; production traffic goes through
    /// [`ShardedEngine::evaluate_full`].
    pub fn shard_engines(&self) -> &[Arc<Engine>] {
        &self.shards
    }

    /// Evaluates one scenario on its home shard, blocking until the
    /// answer is available. See [`ShardedEngine::evaluate_full`] for
    /// the variant that keeps the failure manifest.
    pub fn evaluate(&self, spec: &ScenarioSpec) -> Result<Evaluation, EngineError> {
        self.evaluate_full(spec).map_err(|f| f.error)
    }

    /// Routes the spec to its home shard and evaluates it there; on a
    /// `busy` rejection (queue full or degraded-mode shed) retries once
    /// on the ring-successor shard if spillover is enabled.
    // FailureReport inlines the manifest; see Engine::evaluate_full.
    #[allow(clippy::result_large_err)]
    pub fn evaluate_full(&self, spec: &ScenarioSpec) -> Result<Evaluation, FailureReport> {
        let t = std::time::Instant::now();
        let (home, _hash) = self.router.route_spec(spec).map_err(FailureReport::from)?;
        // Traced requests record the routing decision as a span of its
        // own, directly under the request: the per-shard `shard_eval`
        // spans that follow hang off the same parent, so the trace
        // shows route → home shard (→ spill shard).
        solarstorm_obs::trace::record_rel(
            "route",
            t.elapsed().as_nanos() as u64,
            vec![("home", solarstorm_obs::FieldValue::from(home))],
        );
        let first = self.eval_on(home, spec);
        match first {
            Err(report)
                if self.spill_on_busy
                    && self.shards.len() > 1
                    && matches!(report.error, EngineError::Busy { .. }) =>
            {
                let next = self.router.successor(home);
                solarstorm_obs::event!(
                    solarstorm_obs::Level::Debug,
                    "shard_spill",
                    from = home,
                    to = next
                );
                // An instant marker in the trace: the home shard turned
                // the request away busy and the ring successor takes it.
                solarstorm_obs::trace::record_rel(
                    "shard_spill",
                    0,
                    vec![
                        ("from", solarstorm_obs::FieldValue::from(home)),
                        ("to", solarstorm_obs::FieldValue::from(next)),
                    ],
                );
                self.eval_on(next, spec)
            }
            other => other,
        }
    }

    #[allow(clippy::result_large_err)]
    fn eval_on(&self, shard: usize, spec: &ScenarioSpec) -> Result<Evaluation, FailureReport> {
        let engine = &self.shards[shard];
        if self.hedged_reads && self.shards.len() > 1 {
            let probe = SiblingProbe {
                shards: &self.shards,
                home: shard,
            };
            engine.evaluate_full_hedged(spec, shard as u32, Some(&probe))
        } else {
            engine.evaluate_full_hedged(spec, shard as u32, None)
        }
    }

    /// Whether any shard is currently in cache-only degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.shards.iter().any(|s| s.is_degraded())
    }

    /// Per-shard metrics snapshots plus their merged totals.
    pub fn metrics(&self) -> ShardedMetrics {
        let shards: Vec<EngineMetrics> = self.shards.iter().map(|s| s.metrics()).collect();
        let total = EngineMetrics::merged(shards.iter());
        ShardedMetrics { total, shards }
    }

    /// Gracefully shuts down every shard (drain, then stop).
    /// Idempotent.
    pub fn shutdown(&self) {
        for shard in &self.shards {
            shard.shutdown();
        }
    }
}

impl ScenarioService for ShardedEngine {
    fn evaluate_full(&self, spec: &ScenarioSpec) -> Result<Evaluation, FailureReport> {
        ShardedEngine::evaluate_full(self, spec)
    }

    fn metrics_value(&self) -> Result<serde_json::Value, String> {
        self.metrics().to_value()
    }

    fn prometheus_text(&self) -> String {
        self.metrics().to_prometheus()
    }
}

/// A point-in-time view of a sharded runtime: merged totals (the same
/// shape a single engine reports, so dashboards keep working) plus one
/// [`EngineMetrics`] per shard.
#[derive(Debug, Clone)]
pub struct ShardedMetrics {
    /// Merged totals across shards (see [`EngineMetrics::merged`] for
    /// how latency percentiles combine).
    pub total: EngineMetrics,
    /// Per-shard snapshots, indexed as the router numbers shards.
    pub shards: Vec<EngineMetrics>,
}

impl ShardedMetrics {
    /// The NDJSON `metrics` payload: the merged totals object with a
    /// `shards` array added. Existing clients that read the unlabelled
    /// totals keep working; shard-aware clients index the array. The
    /// per-shard entries omit `stages` (the stage table is
    /// process-global — repeating it per shard would misread as
    /// per-shard attribution).
    pub fn to_value(&self) -> Result<serde_json::Value, String> {
        let mut v = serde_json::to_value(&self.total).map_err(|e| e.to_string())?;
        let mut shard_values = Vec::with_capacity(self.shards.len());
        for (i, m) in self.shards.iter().enumerate() {
            let mut sv = serde_json::to_value(m).map_err(|e| e.to_string())?;
            if let Some(obj) = sv.as_object_mut() {
                obj.insert("shard".into(), serde_json::json!(i));
                obj.remove("stages");
            }
            shard_values.push(sv);
        }
        if let Some(obj) = v.as_object_mut() {
            obj.insert("shards".into(), serde_json::Value::Array(shard_values));
        }
        Ok(v)
    }

    /// Prometheus text: the merged totals rendered exactly as a single
    /// engine would (unlabelled — sums, so existing dashboards don't
    /// break), followed by `shard`-labelled per-shard series.
    pub fn to_prometheus(&self) -> String {
        let mut out = self.total.to_prometheus();
        let counters: [(&str, &str, fn(&EngineMetrics) -> u64); 8] = [
            (
                "stormsim_shard_requests_total",
                "Requests routed to each shard.",
                |m| m.requests,
            ),
            (
                "stormsim_shard_completed_total",
                "Requests each shard answered successfully.",
                |m| m.completed,
            ),
            (
                "stormsim_shard_cache_hits_total",
                "Shard-local result-cache hits.",
                |m| m.cache_hits,
            ),
            (
                "stormsim_shard_cache_misses_total",
                "Shard-local result-cache misses.",
                |m| m.cache_misses,
            ),
            (
                "stormsim_shard_hedge_hits_total",
                "Local misses answered from a sibling shard's cache.",
                |m| m.hedge_hits,
            ),
            (
                "stormsim_shard_hedge_misses_total",
                "Hedged sibling-cache probes that found nothing.",
                |m| m.hedge_misses,
            ),
            (
                "stormsim_shard_rejected_busy_total",
                "Submissions each shard rejected with a full queue.",
                |m| m.rejected_busy,
            ),
            (
                "stormsim_shard_load_shed_total",
                "Cache misses each shard shed while degraded.",
                |m| m.load_shed,
            ),
        ];
        for (name, help, get) in counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for (i, m) in self.shards.iter().enumerate() {
                let _ = writeln!(out, "{name}{{shard=\"{i}\"}} {}", get(m));
            }
        }
        let gauges: [(&str, &str, fn(&EngineMetrics) -> u64); 3] = [
            (
                "stormsim_shard_queue_depth",
                "Jobs currently queued on each shard.",
                |m| m.queue_depth,
            ),
            (
                "stormsim_shard_cache_entries",
                "Entries in each shard's result cache.",
                |m| m.cache_entries,
            ),
            (
                "stormsim_shard_degraded",
                "1 while a shard is in cache-only degraded mode.",
                |m| u64::from(m.degraded),
            ),
        ];
        for (name, help, get) in gauges {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            for (i, m) in self.shards.iter().enumerate() {
                let _ = writeln!(out, "{name}{{shard=\"{i}\"}} {}", get(m));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solarstorm_engine::AnalysisRequest;

    fn sleep_spec(ms: u64, seed: u64) -> ScenarioSpec {
        let mut spec = ScenarioSpec {
            analysis: AnalysisRequest::Sleep { ms },
            ..Default::default()
        };
        spec.mc.seed = seed;
        spec
    }

    fn small(shards: usize) -> ShardedEngine {
        ShardedEngine::new(ShardConfig {
            shards,
            engine: EngineConfig {
                workers: shards.max(1),
                queue_cap: shards.max(1) * 4,
                cache_cap: 64,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    #[test]
    fn budget_division_covers_every_shard() {
        let total = EngineConfig {
            workers: 5,
            queue_cap: 10,
            cache_cap: 0,
            ..Default::default()
        };
        let a = shard_engine_config(&total, 4, 0);
        assert_eq!(a.workers, 2);
        assert_eq!(a.queue_cap, 3);
        assert_eq!(a.cache_cap, 0, "disabled caching stays disabled");
        let b = shard_engine_config(&total, 8, 7);
        assert_eq!(b.workers, 1, "every shard gets at least one worker");
        assert_eq!(b.queue_cap, 2);
        assert!(b.prewarm.is_none(), "only shard 0 prewarms");
    }

    #[test]
    fn routes_stick_and_results_cache_on_the_home_shard() {
        let sharded = small(4);
        let spec = sleep_spec(1, 7);
        let (home, _) = sharded.router().route_spec(&spec).unwrap();
        let cold = sharded.evaluate(&spec).unwrap();
        assert!(!cold.cached);
        assert_eq!(cold.manifest.shard, Some(home as u32));
        let warm = sharded.evaluate(&spec).unwrap();
        assert!(warm.cached);
        assert_eq!(warm.manifest.shard, Some(home as u32));
        let m = sharded.metrics();
        assert_eq!(m.total.requests, 2);
        assert_eq!(m.total.computations, 1);
        assert_eq!(
            m.shards[home].computations, 1,
            "work stays on the home shard"
        );
        sharded.shutdown();
    }

    #[test]
    fn hedged_read_adopts_a_result_computed_elsewhere() {
        let sharded = small(4);
        let spec = sleep_spec(1, 11);
        let (home, _) = sharded.router().route_spec(&spec).unwrap();
        let elsewhere = (home + 1) % sharded.shard_count();
        // Seed a *sibling* shard's cache directly, as a busy spillover
        // would have.
        sharded.shard_engines()[elsewhere].evaluate(&spec).unwrap();
        // Routed through the front door, the home shard misses locally,
        // hedges, and adopts the sibling's result without recomputing.
        let eval = sharded.evaluate(&spec).unwrap();
        assert!(eval.cached);
        assert_eq!(eval.manifest.shard, Some(home as u32));
        assert_eq!(eval.manifest.hedge_hit, Some(true));
        let m = sharded.metrics();
        assert_eq!(m.total.computations, 1, "one compute total, not two");
        assert_eq!(m.shards[home].hedge_hits, 1);
        sharded.shutdown();
    }

    #[test]
    fn busy_home_shard_spills_to_its_ring_successor() {
        // Tiny home shards: 1 worker, 1 queue slot each.
        let sharded = ShardedEngine::new(ShardConfig {
            shards: 2,
            engine: EngineConfig {
                workers: 2,
                queue_cap: 2,
                cache_cap: 64,
                ..Default::default()
            },
            ..Default::default()
        });
        // Find specs that all route to shard 0.
        let mut on_zero = Vec::new();
        let mut seed = 0u64;
        while on_zero.len() < 4 {
            let spec = sleep_spec(300, 1_000 + seed);
            if sharded.router().route_spec(&spec).unwrap().0 == 0 {
                on_zero.push(spec);
            }
            seed += 1;
        }
        // Occupy shard 0's worker and queue slot.
        let sharded = std::sync::Arc::new(sharded);
        let mut held = Vec::new();
        for spec in on_zero.iter().take(2).cloned() {
            let sharded = std::sync::Arc::clone(&sharded);
            held.push(std::thread::spawn(move || sharded.evaluate(&spec)));
        }
        let saturated = (0..400).any(|_| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            sharded.metrics().shards[0].queue_depth >= 1
        });
        assert!(saturated, "shard 0's queue slot must fill");
        // The third request would be rejected busy by shard 0; the
        // spillover answers it on shard 1 instead.
        let spilled = sharded.evaluate(&on_zero[2]).unwrap();
        assert_eq!(spilled.manifest.shard, Some(1));
        let m = sharded.metrics();
        assert!(m.shards[0].rejected_busy >= 1);
        assert!(m.shards[1].completed >= 1);
        for h in held {
            h.join().unwrap().unwrap();
        }
        sharded.shutdown();
    }

    #[test]
    fn metrics_expose_totals_and_per_shard_series() {
        let sharded = small(2);
        sharded.evaluate(&sleep_spec(1, 21)).unwrap();
        sharded.evaluate(&sleep_spec(1, 22)).unwrap();
        let m = sharded.metrics();
        let v = m.to_value().unwrap();
        assert_eq!(v["requests"], 2);
        let shards = v["shards"].as_array().unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0]["shard"], 0);
        assert_eq!(shards[1]["shard"], 1);
        assert!(
            shards[0].get("stages").is_none(),
            "per-shard stages omitted"
        );
        let req_sum: u64 = shards.iter().map(|s| s["requests"].as_u64().unwrap()).sum();
        assert_eq!(req_sum, 2, "per-shard requests sum to the total");

        let text = m.to_prometheus();
        assert!(text.contains("\nstormsim_requests_total 2\n"), "{text}");
        assert!(
            text.contains("stormsim_shard_requests_total{shard=\"0\"}"),
            "{text}"
        );
        assert!(
            text.contains("stormsim_shard_requests_total{shard=\"1\"}"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE stormsim_shard_queue_depth gauge"),
            "{text}"
        );
        sharded.shutdown();
    }

    #[test]
    fn traced_hedged_requests_cross_the_shard_boundary_in_one_trace() {
        let sharded = small(4);
        let spec = sleep_spec(1, 41);
        let (home, _) = sharded.router().route_spec(&spec).unwrap();
        let elsewhere = (home + 1) % sharded.shard_count();
        // Seed a sibling's cache so the traced front-door request hits
        // via the hedge, crossing the shard boundary inside one trace.
        sharded.shard_engines()[elsewhere].evaluate(&spec).unwrap();

        let handle = solarstorm_obs::TraceHandle::begin("request", None);
        let eval = sharded.evaluate(&spec).unwrap();
        let done = handle.finish(None);
        assert!(eval.cached);
        assert_eq!(eval.manifest.hedge_hit, Some(true));

        // The routing decision is a span directly under the request.
        let route = done.spans.iter().find(|s| s.name == "route").unwrap();
        assert_eq!(route.parent, 1);
        assert!(route.attrs.iter().any(|(k, v)| *k == "home"
            && matches!(v, solarstorm_obs::FieldValue::U64(n) if *n == home as u64)));

        // The home shard's eval span names shard A...
        let eval_span = done.spans.iter().find(|s| s.name == "shard_eval").unwrap();
        assert!(eval_span.attrs.iter().any(|(k, v)| *k == "shard"
            && matches!(v, solarstorm_obs::FieldValue::U64(n) if *n == home as u64)));

        // ...and its hedge-probe child names shard B as the source.
        let probe = done.spans.iter().find(|s| s.name == "hedge_probe").unwrap();
        assert_eq!(
            probe.parent, eval_span.id,
            "probe nests under the shard eval"
        );
        assert!(probe
            .attrs
            .iter()
            .any(|(k, v)| *k == "hit" && matches!(v, solarstorm_obs::FieldValue::Bool(true))));
        assert!(probe.attrs.iter().any(|(k, v)| *k == "src_shard"
            && matches!(v, solarstorm_obs::FieldValue::U64(n) if *n == elsewhere as u64)));
        sharded.shutdown();
    }

    #[test]
    fn single_shard_is_just_an_engine() {
        let sharded = small(1);
        let eval = sharded.evaluate(&sleep_spec(1, 31)).unwrap();
        assert_eq!(eval.manifest.shard, Some(0));
        assert!(
            eval.manifest.hedge_hit.is_none(),
            "one shard has no siblings to hedge against"
        );
        sharded.shutdown();
    }
}
