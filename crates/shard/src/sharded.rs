//! The sharded runtime: N engines, one router, hedged reads, busy
//! spillover — under supervision.
//!
//! Each shard is wrapped in a health state machine ([`crate::health`])
//! fed by a sliding-window circuit breaker ([`crate::breaker`]). When a
//! shard's breaker trips, the shard is *quarantined*: its bit clears in
//! the router's live mask and its keys remap to the ring successor
//! (ring growth in reverse — nothing else moves). A background
//! supervisor thread ([`crate::supervisor`]) respawns the quarantined
//! engine — fresh worker pool on the preserved cache partition, so
//! recovery is warm — and walks it through half-open *probation*: a
//! small ration of real home-keyed requests probe it, and enough
//! successes re-admit it to routing. Requests that fail on a wedged
//! shard retry once on the live ring successor after a deterministic
//! jittered backoff; every diverted request carries `rerouted_from` /
//! `health_state` provenance in its manifest. None of this changes
//! results: supervision decides *where* a deterministic computation
//! runs, never what it returns.

use crate::breaker::BreakerConfig;
use crate::health::{HealthSnapshot, HealthState, ShardHealth};
use crate::router::{Router, DEFAULT_REPLICAS};
use crate::supervisor::Supervisor;
use parking_lot::RwLock;
use solarstorm_engine::{
    Engine, EngineConfig, EngineError, EngineMetrics, Evaluation, FailureReport, HedgeProbe,
    RunManifest, ScenarioResult, ScenarioService, ScenarioSpec,
};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Sharded-runtime sizing: how many shards, the *total* engine budget
/// they divide between them, and the supervision tuning.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of engine shards (clamped to ≥ 1). The default is the
    /// core count, matching the CLI's `--shards` default.
    pub shards: usize,
    /// Total engine budget: `workers`, `queue_cap`, and `cache_cap`
    /// are divided (ceiling) across the shards; deadline and
    /// degraded-mode settings apply to every shard unchanged;
    /// `prewarm` runs once (datasets are process-global).
    pub engine: EngineConfig,
    /// Probe sibling shards' caches (read-only) on a shard-local cache
    /// miss before paying for compute. On by default. Quarantined
    /// siblings are never probed.
    pub hedged_reads: bool,
    /// Retry a `busy` rejection on the ring-successor shard (and, if
    /// that is busy too, one more ring hop) before surfacing it to the
    /// client. On by default.
    pub spill_on_busy: bool,
    /// Virtual nodes per shard on the hash ring.
    pub replicas: usize,
    /// Circuit-breaker window/threshold and the probation probe count,
    /// shared by every shard.
    pub breaker: BreakerConfig,
    /// Run the supervision sweep thread, which respawns quarantined
    /// shards and walks them through probation. On by default;
    /// single-shard runtimes never supervise (there is nowhere to
    /// reroute). Off, quarantined shards stay ejected until
    /// [`ShardedEngine::readmit`].
    pub supervise: bool,
    /// Pause between supervision sweeps, milliseconds (clamped ≥ 1).
    /// Recovery latency is at most one sweep interval plus the respawn.
    pub supervisor_interval_ms: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ShardConfig {
            shards: cores.max(1),
            engine: EngineConfig::default(),
            hedged_reads: true,
            spill_on_busy: true,
            replicas: DEFAULT_REPLICAS,
            breaker: BreakerConfig::default(),
            supervise: true,
            supervisor_interval_ms: 20,
        }
    }
}

/// Divides the total engine budget into shard `index`'s slice.
fn shard_engine_config(total: &EngineConfig, shards: usize, index: usize) -> EngineConfig {
    EngineConfig {
        workers: total.workers.div_ceil(shards).max(1),
        queue_cap: total.queue_cap.div_ceil(shards).max(1),
        // Ceiling division preserves 0 (caching disabled) as 0.
        cache_cap: total.cache_cap.div_ceil(shards),
        // Datasets are process-global; one prewarm warms every shard.
        prewarm: if index == 0 { total.prewarm } else { None },
        ..total.clone()
    }
}

/// Deterministic retry jitter: 1–4 ms derived from the spec's content
/// hash and the shard the attempt failed on. Replays reproduce the
/// same backoff, while different specs failing at once spread their
/// retries instead of stampeding the successor.
fn jittered_backoff_ms(hash: u64, failed_shard: usize) -> u64 {
    1 + crate::ring::mix64(hash ^ (failed_shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 4
}

/// Whether an error says something about the *shard's* health (feeds
/// the breaker window): infrastructure failures and shed load do;
/// client mistakes (`invalid_spec`, `unknown_experiment`) and the
/// drain handshake (`shutting_down`) do not.
fn health_signal(error: &EngineError) -> bool {
    matches!(
        error,
        EngineError::Busy { .. }
            | EngineError::DeadlineExceeded { .. }
            | EngineError::Panicked { .. }
            | EngineError::Compute(_)
    )
}

/// Whether a failed attempt is worth one retry on the ring successor:
/// infrastructure failures are (another shard computes the same
/// deterministic answer), and `shutting_down` is (it can be the
/// transient window while the supervisor swaps a respawned engine in).
/// Deadline failures are not — the request already spent its time
/// budget, and a fresh attempt would double the client's worst-case
/// wait. Client errors are deterministic and never retried.
fn retryable(error: &EngineError) -> bool {
    matches!(
        error,
        EngineError::Panicked { .. } | EngineError::Compute(_) | EngineError::ShuttingDown
    )
}

/// Chaos fault points for the shard layer, compiled in only with the
/// `chaos` feature. Two named points per shard, checked on every
/// attempt before the engine is touched:
///
/// * `shard_wedge.{i}` — arm with [`solarstorm_obs::chaos::Fault::Error`]
///   to make shard `i` fail attempts with a typed `compute` error (a
///   wedged shard as the router sees it), or `Fault::Stall` to slow it.
/// * `shard_panic_storm.{i}` — arm with `Fault::Panic`; the panic is
///   caught here, at the same kind of boundary the engine's workers
///   use, and surfaces as the typed `panic` error.
#[cfg(feature = "chaos")]
fn chaos_shard_fault(shard: usize) -> Option<EngineError> {
    let wedge = format!("shard_wedge.{shard}");
    if solarstorm_obs::chaos::inject(&wedge) {
        return Some(EngineError::Compute(format!(
            "chaos: injected wedge at {wedge}"
        )));
    }
    let storm = format!("shard_panic_storm.{shard}");
    match std::panic::catch_unwind(|| solarstorm_obs::chaos::inject(&storm)) {
        Ok(true) => Some(EngineError::Compute(format!(
            "chaos: injected error at {storm}"
        ))),
        Ok(false) => None,
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| format!("chaos: injected panic at {storm}"));
            Some(EngineError::Panicked { message })
        }
    }
}

/// The hedge: a read-only view over every shard's cache except the
/// probing shard's own (it already missed). Quarantined siblings are
/// skipped — their cache partition is intact (the respawn preserves
/// it), but a wedged shard must not be touched synchronously on the
/// request path.
struct SiblingProbe<'a> {
    core: &'a Core,
    home: usize,
}

impl HedgeProbe for SiblingProbe<'_> {
    fn probe(&self, hash: u64, canon: &str) -> Option<(u32, Arc<ScenarioResult>)> {
        self.core
            .shards
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                *i != self.home && self.core.supervision[*i].state() != HealthState::Quarantined
            })
            .find_map(|(i, slot)| slot.read().peek_cache(hash, canon).map(|r| (i as u32, r)))
    }
}

/// Everything the request path and the supervisor share: the engine
/// slots, the router with its live mask, and the per-shard health
/// records. Engine slots are `RwLock<Arc<Engine>>` so the supervisor
/// can swap a respawned engine in while requests keep cloning the
/// current one out (readers never block readers; the write lock is
/// held only for the pointer swap).
pub(crate) struct Core {
    shards: Vec<RwLock<Arc<Engine>>>,
    router: Router,
    supervision: Vec<ShardHealth>,
    breaker: BreakerConfig,
    engine_total: EngineConfig,
    hedged_reads: bool,
    spill_on_busy: bool,
}

impl Core {
    /// Health-aware admission: where should a request homed at
    /// `pure_home` actually run, and is it a probation probe? Healthy
    /// and suspect homes serve normally. A probation home admits its
    /// probe ration and reroutes the rest. A quarantined home is
    /// ejected: the live-masked route lands on the ring successor.
    fn admit(&self, pure_home: usize, hash: u64) -> (usize, bool) {
        let health = &self.supervision[pure_home];
        match health.state() {
            HealthState::Healthy | HealthState::Suspect => (pure_home, false),
            HealthState::Probation if health.admit_probe() => (pure_home, true),
            _ => (self.router.route_live(hash), false),
        }
    }

    /// One evaluation attempt on one shard (chaos faults first, then
    /// the shard's current engine, hedging against live siblings).
    // FailureReport inlines the manifest; see Engine::evaluate_full.
    #[allow(clippy::result_large_err)]
    fn eval_on(&self, shard: usize, spec: &ScenarioSpec) -> Result<Evaluation, FailureReport> {
        #[cfg(feature = "chaos")]
        if let Some(error) = chaos_shard_fault(shard) {
            return Err(FailureReport::from(error));
        }
        let engine = {
            let guard = self.shards[shard].read();
            Arc::clone(&guard)
        };
        if self.hedged_reads && self.shards.len() > 1 {
            let probe = SiblingProbe {
                core: self,
                home: shard,
            };
            engine.evaluate_full_hedged(spec, shard as u32, Some(&probe))
        } else {
            engine.evaluate_full_hedged(spec, shard as u32, None)
        }
    }

    /// Feeds one attempt's outcome into the serving shard's health
    /// machine and performs any transition it triggers: breaker trip →
    /// quarantine (never the last live shard — the router's `try_eject`
    /// is the single-winner arbiter), probe failure → re-trip, enough
    /// probe successes → re-admission.
    pub(crate) fn observe_outcome(&self, shard: usize, failure: bool, probe: bool) {
        let health = &self.supervision[shard];
        match health.state() {
            HealthState::Probation => {
                if !probe {
                    return; // stale admission from before the state changed
                }
                if failure {
                    if health.enter_quarantine(true) {
                        health.trips.fetch_add(1, Ordering::Relaxed);
                        solarstorm_obs::event!(
                            solarstorm_obs::Level::Warn,
                            "shard_probe_failed",
                            shard = shard
                        );
                    }
                } else if health.note_probe_success(self.breaker.probes) && health.readmit() {
                    self.router.set_live(shard);
                    health.resets.fetch_add(1, Ordering::Relaxed);
                    solarstorm_obs::event!(
                        solarstorm_obs::Level::Info,
                        "shard_readmitted",
                        shard = shard
                    );
                }
            }
            HealthState::Quarantined => {}
            HealthState::Healthy | HealthState::Suspect => {
                if health.record_outcome(failure) && self.router.try_eject(shard) {
                    health.enter_quarantine(true);
                    health.trips.fetch_add(1, Ordering::Relaxed);
                    solarstorm_obs::event!(
                        solarstorm_obs::Level::Warn,
                        "shard_quarantined",
                        shard = shard
                    );
                    solarstorm_obs::trace::record_rel(
                        "shard_quarantine",
                        0,
                        vec![("shard", solarstorm_obs::FieldValue::from(shard))],
                    );
                }
            }
        }
    }

    /// Stamps routing/health provenance into a manifest: requests not
    /// served by their pure hash home carry `rerouted_from` (and count
    /// on the home's reroute counter); requests served by a
    /// not-plain-healthy shard carry its state.
    fn stamp(&self, manifest: &mut RunManifest, pure_home: usize, serving: usize) {
        if serving != pure_home {
            manifest.rerouted_from = Some(pure_home as u32);
            manifest.health_state = Some(self.supervision[pure_home].state().as_str().to_string());
            self.supervision[pure_home]
                .reroutes
                .fetch_add(1, Ordering::Relaxed);
        } else {
            let state = self.supervision[serving].state();
            if state != HealthState::Healthy {
                manifest.health_state = Some(state.as_str().to_string());
            }
        }
    }

    /// One supervisor sweep: respawn every quarantined shard that
    /// requested it, then move it into half-open probation. The old
    /// engine is *abandoned*, not joined — wedged workers must not
    /// block recovery; responsive ones drain their queue harmlessly
    /// against the shared cache and metrics. The replacement inherits
    /// the shard's cache partition, so recovery is warm.
    pub(crate) fn sweep_respawns(&self) {
        for (i, health) in self.supervision.iter().enumerate() {
            if health.state() != HealthState::Quarantined || !health.take_respawn_request() {
                continue;
            }
            let old = {
                let guard = self.shards[i].read();
                Arc::clone(&guard)
            };
            old.abandon();
            let fresh = Arc::new(Engine::respawn_from(&old, self.slice_cfg(i)));
            *self.shards[i].write() = fresh;
            health.respawns.fetch_add(1, Ordering::Relaxed);
            // Probation starts only after the swap, so every probe
            // reaches the fresh engine.
            health.enter_probation();
            solarstorm_obs::event!(solarstorm_obs::Level::Info, "shard_respawned", shard = i);
        }
    }

    /// Shard `index`'s slice of the total engine budget, without a
    /// prewarm (datasets are already resident by respawn time).
    fn slice_cfg(&self, index: usize) -> EngineConfig {
        EngineConfig {
            prewarm: None,
            ..shard_engine_config(&self.engine_total, self.shards.len(), index)
        }
    }

    /// Per-shard health snapshots for the health endpoints and metrics.
    fn health_snapshots(&self) -> Vec<HealthSnapshot> {
        self.supervision
            .iter()
            .enumerate()
            .map(|(i, h)| h.snapshot(i as u32, self.router.is_live(i), self.breaker.probes))
            .collect()
    }
}

/// N engine shards behind one consistent-hash router, supervised.
///
/// Each shard owns its own result cache, single-flight table, queue,
/// and worker slice — shared-nothing on the write path, so shards never
/// contend on each other's locks. Requests route by spec content hash
/// (the same hash the cache uses), which gives every scenario a *home
/// shard*: repeats of a spec always land where its cached result lives.
/// Three escape hatches soften the partitioning:
///
/// * **Hedged reads** — a home-shard cache miss probes the live
///   siblings' caches read-only before paying for compute, so results
///   computed elsewhere (e.g. after a spillover) are adopted, not
///   recomputed.
/// * **Busy spillover** — a `busy` rejection walks up to two live ring
///   hops (home → successor → its successor) before surfacing the
///   most optimistic `retry_after_ms` observed.
/// * **Supervision** — per-shard circuit breakers quarantine failing
///   shards (ejecting them from routing via the live mask), a
///   supervisor thread respawns them on their preserved cache
///   partition, and half-open probation re-admits them; see the
///   module docs.
///
/// Results are bit-identical to a single [`Engine`]'s: routing,
/// spillover, retries, and quarantine decide only *where* a
/// deterministic computation runs. Deadlines, panic isolation, load
/// shedding, and chaos injection all operate per shard unchanged.
pub struct ShardedEngine {
    core: Arc<Core>,
    supervisor: Supervisor,
}

impl ShardedEngine {
    /// Builds the shards (each starting its own worker pool), the
    /// router, the health records, and — for supervised multi-shard
    /// runtimes — the supervisor thread.
    pub fn new(cfg: ShardConfig) -> ShardedEngine {
        let n = cfg.shards.max(1);
        let breaker = cfg.breaker.normalized();
        let shards = (0..n)
            .map(|i| {
                RwLock::new(Arc::new(Engine::new(shard_engine_config(
                    &cfg.engine,
                    n,
                    i,
                ))))
            })
            .collect();
        let supervision = (0..n).map(|_| ShardHealth::new(breaker)).collect();
        let core = Arc::new(Core {
            shards,
            router: Router::with_replicas(n, cfg.replicas),
            supervision,
            breaker,
            engine_total: cfg.engine,
            hedged_reads: cfg.hedged_reads,
            spill_on_busy: cfg.spill_on_busy,
        });
        let supervisor = if cfg.supervise && n > 1 {
            Supervisor::spawn(
                Arc::clone(&core),
                Duration::from_millis(cfg.supervisor_interval_ms.max(1)),
            )
        } else {
            Supervisor::disabled()
        };
        ShardedEngine { core, supervisor }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.core.shards.len()
    }

    /// The router (exposed for frontends and benchmarks that need to
    /// know a spec's home shard or the current live mask).
    pub fn router(&self) -> &Router {
        &self.core.router
    }

    /// A snapshot of the shard engines, indexed as the router numbers
    /// them (each entry is the slot's *current* engine; the supervisor
    /// may swap in replacements). Intended for tests and benchmarks;
    /// production traffic goes through [`ShardedEngine::evaluate_full`].
    pub fn shard_engines(&self) -> Vec<Arc<Engine>> {
        self.core
            .shards
            .iter()
            .map(|slot| {
                let guard = slot.read();
                Arc::clone(&guard)
            })
            .collect()
    }

    /// Evaluates one scenario on its home shard, blocking until the
    /// answer is available. See [`ShardedEngine::evaluate_full`] for
    /// the variant that keeps the failure manifest.
    pub fn evaluate(&self, spec: &ScenarioSpec) -> Result<Evaluation, EngineError> {
        self.evaluate_full(spec).map_err(|f| f.error)
    }

    /// Routes the spec to its home shard (honouring quarantine — see
    /// [`Core::admit`]) and evaluates it there. `busy` rejections walk
    /// up to two more live ring hops, surfacing the most optimistic
    /// backoff hint when everyone is busy; infrastructure failures
    /// (panic, compute, drain) retry once on the live ring successor
    /// after a deterministic jittered backoff. Every diverted request
    /// carries `rerouted_from`/`health_state` provenance.
    // FailureReport inlines the manifest; see Engine::evaluate_full.
    #[allow(clippy::result_large_err)]
    pub fn evaluate_full(&self, spec: &ScenarioSpec) -> Result<Evaluation, FailureReport> {
        let t = std::time::Instant::now();
        let core = &*self.core;
        let (pure_home, hash) = core.router.route_spec(spec).map_err(FailureReport::from)?;
        let (home, probe) = core.admit(pure_home, hash);
        // Traced requests record the routing decision as a span of its
        // own, directly under the request: the per-shard `shard_eval`
        // spans that follow hang off the same parent, so the trace
        // shows route → serving shard (→ spill/retry shard).
        solarstorm_obs::trace::record_rel(
            "route",
            t.elapsed().as_nanos() as u64,
            vec![
                ("home", solarstorm_obs::FieldValue::from(pure_home)),
                ("serving", solarstorm_obs::FieldValue::from(home)),
            ],
        );
        if home != pure_home {
            let state = core.supervision[pure_home].state();
            solarstorm_obs::event!(
                solarstorm_obs::Level::Debug,
                "shard_reroute",
                from = pure_home,
                to = home,
                state = state.as_str()
            );
            // An instant marker in the trace: the home shard is out of
            // routing and the live-masked route diverts the request.
            solarstorm_obs::trace::record_rel(
                "shard_reroute",
                0,
                vec![
                    ("from", solarstorm_obs::FieldValue::from(pure_home)),
                    ("to", solarstorm_obs::FieldValue::from(home)),
                    ("state", solarstorm_obs::FieldValue::from(state.as_str())),
                ],
            );
        } else if probe {
            solarstorm_obs::trace::record_rel(
                "probation_probe",
                0,
                vec![("shard", solarstorm_obs::FieldValue::from(home))],
            );
        }

        let n = core.shards.len();
        let mut serving = home;
        // Shards consulted on the busy-spillover walk: home plus at
        // most two more live ring hops.
        let mut consulted = [home, usize::MAX, usize::MAX];
        let mut hops = 1usize;
        let mut best_hint: Option<u64> = None;
        let mut retried = false;
        loop {
            let attempt = core.eval_on(serving, spec);
            let is_probe = probe && serving == pure_home;
            match attempt {
                Ok(mut eval) => {
                    core.observe_outcome(serving, false, is_probe);
                    core.stamp(&mut eval.manifest, pure_home, serving);
                    return Ok(eval);
                }
                Err(mut report) => {
                    if health_signal(&report.error) {
                        core.observe_outcome(serving, true, is_probe);
                    }
                    match report.error {
                        EngineError::Busy { retry_after_ms } if core.spill_on_busy && n > 1 => {
                            best_hint =
                                Some(best_hint.map_or(retry_after_ms, |b| b.min(retry_after_ms)));
                            if hops < consulted.len() {
                                let next = core.router.successor_live(serving);
                                if next != serving && !consulted[..hops].contains(&next) {
                                    solarstorm_obs::event!(
                                        solarstorm_obs::Level::Debug,
                                        "shard_spill",
                                        from = serving,
                                        to = next
                                    );
                                    // An instant marker in the trace:
                                    // the busy shard turned the request
                                    // away and the next live ring hop
                                    // takes it.
                                    solarstorm_obs::trace::record_rel(
                                        "shard_spill",
                                        0,
                                        vec![
                                            ("from", solarstorm_obs::FieldValue::from(serving)),
                                            ("to", solarstorm_obs::FieldValue::from(next)),
                                        ],
                                    );
                                    consulted[hops] = next;
                                    hops += 1;
                                    serving = next;
                                    continue;
                                }
                            }
                            // Everyone consulted is busy: surface the
                            // most optimistic backoff of the walk.
                            if let Some(best) = best_hint {
                                report.error = EngineError::Busy {
                                    retry_after_ms: best,
                                };
                            }
                            if let Some(m) = report.manifest.as_mut() {
                                core.stamp(m, pure_home, serving);
                            }
                            return Err(report);
                        }
                        ref error if retryable(error) && !retried && n > 1 => {
                            let next = core.router.successor_live(serving);
                            if next != serving {
                                retried = true;
                                let backoff_ms = jittered_backoff_ms(hash, serving);
                                solarstorm_obs::event!(
                                    solarstorm_obs::Level::Warn,
                                    "shard_retry",
                                    from = serving,
                                    to = next,
                                    backoff_ms = backoff_ms,
                                    code = report.error.code()
                                );
                                solarstorm_obs::trace::record_rel(
                                    "shard_retry",
                                    0,
                                    vec![
                                        ("from", solarstorm_obs::FieldValue::from(serving)),
                                        ("to", solarstorm_obs::FieldValue::from(next)),
                                        (
                                            "backoff_ms",
                                            solarstorm_obs::FieldValue::from(backoff_ms),
                                        ),
                                    ],
                                );
                                std::thread::sleep(Duration::from_millis(backoff_ms));
                                serving = next;
                                continue;
                            }
                            if let Some(m) = report.manifest.as_mut() {
                                core.stamp(m, pure_home, serving);
                            }
                            return Err(report);
                        }
                        _ => {
                            if let Some(m) = report.manifest.as_mut() {
                                core.stamp(m, pure_home, serving);
                            }
                            return Err(report);
                        }
                    }
                }
            }
        }
    }

    /// Manually quarantines a shard (maintenance eject): clears its
    /// live bit and marks it quarantined *without* requesting a
    /// respawn, so it stays out of routing until
    /// [`ShardedEngine::readmit`]. Returns `false` if the shard is
    /// unknown, already quarantined, or the last live shard.
    pub fn quarantine(&self, shard: usize) -> bool {
        if shard >= self.core.shards.len() || !self.core.router.try_eject(shard) {
            return false;
        }
        self.core.supervision[shard].enter_quarantine(false);
        solarstorm_obs::event!(
            solarstorm_obs::Level::Warn,
            "shard_quarantined",
            shard = shard,
            manual = true
        );
        true
    }

    /// Manually re-admits a quarantined or probation shard: resets its
    /// breaker window and probe round, marks it healthy, and restores
    /// its live bit. Returns `false` unless the shard was actually
    /// ejected.
    pub fn readmit(&self, shard: usize) -> bool {
        if shard >= self.core.shards.len() {
            return false;
        }
        let health = &self.core.supervision[shard];
        match health.state() {
            HealthState::Quarantined | HealthState::Probation => {
                health.force_healthy();
                self.core.router.set_live(shard);
                true
            }
            _ => false,
        }
    }

    /// Per-shard supervision snapshots (state, breaker window stats,
    /// trip/reset/reroute/respawn counters).
    pub fn health(&self) -> Vec<HealthSnapshot> {
        self.core.health_snapshots()
    }

    /// Whether any shard is currently in cache-only degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.core
            .shards
            .iter()
            .any(|slot| slot.read().is_degraded())
    }

    /// Per-shard metrics snapshots plus their merged totals and the
    /// supervision snapshots.
    pub fn metrics(&self) -> ShardedMetrics {
        let shards: Vec<EngineMetrics> = self
            .core
            .shards
            .iter()
            .map(|slot| slot.read().metrics())
            .collect();
        let total = EngineMetrics::merged(shards.iter());
        ShardedMetrics {
            total,
            shards,
            health: self.health(),
        }
    }

    /// Gracefully shuts down the supervisor and every shard (drain,
    /// then stop). Idempotent.
    pub fn shutdown(&self) {
        self.supervisor.stop();
        for slot in &self.core.shards {
            slot.read().shutdown();
        }
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // Engines shut themselves down when the core's Arcs release;
        // the supervisor thread must be stopped explicitly.
        self.supervisor.stop();
    }
}

impl ScenarioService for ShardedEngine {
    fn evaluate_full(&self, spec: &ScenarioSpec) -> Result<Evaluation, FailureReport> {
        ShardedEngine::evaluate_full(self, spec)
    }

    fn metrics_value(&self) -> Result<serde_json::Value, String> {
        self.metrics().to_value()
    }

    fn prometheus_text(&self) -> String {
        self.metrics().to_prometheus()
    }

    fn health_value(&self) -> serde_json::Value {
        let shards = self.health();
        let healthy = shards.iter().all(|s| s.state == "healthy");
        serde_json::json!({ "healthy": healthy, "shards": shards })
    }
}

/// Gauge encoding of a snapshot's state label (see
/// [`HealthState::code`]).
fn health_state_code(state: &str) -> u8 {
    match state {
        "suspect" => 1,
        "quarantined" => 2,
        "probation" => 3,
        _ => 0,
    }
}

/// A point-in-time view of a sharded runtime: merged totals (the same
/// shape a single engine reports, so dashboards keep working), one
/// [`EngineMetrics`] per shard, and the supervision snapshots.
#[derive(Debug, Clone)]
pub struct ShardedMetrics {
    /// Merged totals across shards (see [`EngineMetrics::merged`] for
    /// how latency percentiles combine).
    pub total: EngineMetrics,
    /// Per-shard snapshots, indexed as the router numbers shards.
    pub shards: Vec<EngineMetrics>,
    /// Per-shard supervision snapshots, same indexing.
    pub health: Vec<HealthSnapshot>,
}

impl ShardedMetrics {
    /// The NDJSON `metrics` payload: the merged totals object with
    /// `shards` and `health` arrays added. Existing clients that read
    /// the unlabelled totals keep working; shard-aware clients index
    /// the arrays. The per-shard entries omit `stages` (the stage
    /// table is process-global — repeating it per shard would misread
    /// as per-shard attribution).
    pub fn to_value(&self) -> Result<serde_json::Value, String> {
        let mut v = serde_json::to_value(&self.total).map_err(|e| e.to_string())?;
        let mut shard_values = Vec::with_capacity(self.shards.len());
        for (i, m) in self.shards.iter().enumerate() {
            let mut sv = serde_json::to_value(m).map_err(|e| e.to_string())?;
            if let Some(obj) = sv.as_object_mut() {
                obj.insert("shard".into(), serde_json::json!(i));
                obj.remove("stages");
            }
            shard_values.push(sv);
        }
        if let Some(obj) = v.as_object_mut() {
            obj.insert("shards".into(), serde_json::Value::Array(shard_values));
            obj.insert(
                "health".into(),
                serde_json::to_value(&self.health).map_err(|e| e.to_string())?,
            );
        }
        Ok(v)
    }

    /// Prometheus text: the merged totals rendered exactly as a single
    /// engine would (unlabelled — sums, so existing dashboards don't
    /// break), followed by `shard`-labelled per-shard series, then the
    /// supervision series.
    pub fn to_prometheus(&self) -> String {
        let mut out = self.total.to_prometheus();
        let counters: [(&str, &str, fn(&EngineMetrics) -> u64); 8] = [
            (
                "stormsim_shard_requests_total",
                "Requests routed to each shard.",
                |m| m.requests,
            ),
            (
                "stormsim_shard_completed_total",
                "Requests each shard answered successfully.",
                |m| m.completed,
            ),
            (
                "stormsim_shard_cache_hits_total",
                "Shard-local result-cache hits.",
                |m| m.cache_hits,
            ),
            (
                "stormsim_shard_cache_misses_total",
                "Shard-local result-cache misses.",
                |m| m.cache_misses,
            ),
            (
                "stormsim_shard_hedge_hits_total",
                "Local misses answered from a sibling shard's cache.",
                |m| m.hedge_hits,
            ),
            (
                "stormsim_shard_hedge_misses_total",
                "Hedged sibling-cache probes that found nothing.",
                |m| m.hedge_misses,
            ),
            (
                "stormsim_shard_rejected_busy_total",
                "Submissions each shard rejected with a full queue.",
                |m| m.rejected_busy,
            ),
            (
                "stormsim_shard_load_shed_total",
                "Cache misses each shard shed while degraded.",
                |m| m.load_shed,
            ),
        ];
        for (name, help, get) in counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for (i, m) in self.shards.iter().enumerate() {
                let _ = writeln!(out, "{name}{{shard=\"{i}\"}} {}", get(m));
            }
        }
        let gauges: [(&str, &str, fn(&EngineMetrics) -> u64); 3] = [
            (
                "stormsim_shard_queue_depth",
                "Jobs currently queued on each shard.",
                |m| m.queue_depth,
            ),
            (
                "stormsim_shard_cache_entries",
                "Entries in each shard's result cache.",
                |m| m.cache_entries,
            ),
            (
                "stormsim_shard_degraded",
                "1 while a shard is in cache-only degraded mode.",
                |m| u64::from(m.degraded),
            ),
        ];
        for (name, help, get) in gauges {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            for (i, m) in self.shards.iter().enumerate() {
                let _ = writeln!(out, "{name}{{shard=\"{i}\"}} {}", get(m));
            }
        }
        let _ = writeln!(
            out,
            "# HELP stormsim_shard_health_state Supervision state per shard \
             (0 healthy, 1 suspect, 2 quarantined, 3 probation)."
        );
        let _ = writeln!(out, "# TYPE stormsim_shard_health_state gauge");
        for h in &self.health {
            let _ = writeln!(
                out,
                "stormsim_shard_health_state{{shard=\"{}\"}} {}",
                h.shard,
                health_state_code(&h.state)
            );
        }
        let _ = writeln!(
            out,
            "# HELP stormsim_shard_live 1 while the shard is in the router's live mask."
        );
        let _ = writeln!(out, "# TYPE stormsim_shard_live gauge");
        for h in &self.health {
            let _ = writeln!(
                out,
                "stormsim_shard_live{{shard=\"{}\"}} {}",
                h.shard,
                u64::from(h.live)
            );
        }
        let supervision_counters: [(&str, &str, fn(&HealthSnapshot) -> u64); 4] = [
            (
                "stormsim_shard_breaker_trips_total",
                "Circuit-breaker trips (entries into quarantine) per shard.",
                |h| h.trips,
            ),
            (
                "stormsim_shard_breaker_resets_total",
                "Breaker resets (re-admissions after probation) per shard.",
                |h| h.resets,
            ),
            (
                "stormsim_shard_reroutes_total",
                "Requests homed on the shard that another shard answered.",
                |h| h.reroutes,
            ),
            (
                "stormsim_shard_respawns_total",
                "Engine respawns the supervisor performed per shard.",
                |h| h.respawns,
            ),
        ];
        for (name, help, get) in supervision_counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for h in &self.health {
                let _ = writeln!(out, "{name}{{shard=\"{}\"}} {}", h.shard, get(h));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solarstorm_engine::AnalysisRequest;

    fn sleep_spec(ms: u64, seed: u64) -> ScenarioSpec {
        let mut spec = ScenarioSpec {
            analysis: AnalysisRequest::Sleep { ms },
            ..Default::default()
        };
        spec.mc.seed = seed;
        spec
    }

    fn small(shards: usize) -> ShardedEngine {
        ShardedEngine::new(ShardConfig {
            shards,
            engine: EngineConfig {
                workers: shards.max(1),
                queue_cap: shards.max(1) * 4,
                cache_cap: 64,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    /// A spec homed on `shard` (search over seeds).
    fn spec_homed_at(sharded: &ShardedEngine, shard: usize, ms: u64) -> ScenarioSpec {
        let mut seed = 0u64;
        loop {
            let spec = sleep_spec(ms, 50_000 + seed);
            if sharded.router().route_spec(&spec).unwrap().0 == shard {
                return spec;
            }
            seed += 1;
        }
    }

    #[test]
    fn budget_division_covers_every_shard() {
        let total = EngineConfig {
            workers: 5,
            queue_cap: 10,
            cache_cap: 0,
            ..Default::default()
        };
        let a = shard_engine_config(&total, 4, 0);
        assert_eq!(a.workers, 2);
        assert_eq!(a.queue_cap, 3);
        assert_eq!(a.cache_cap, 0, "disabled caching stays disabled");
        let b = shard_engine_config(&total, 8, 7);
        assert_eq!(b.workers, 1, "every shard gets at least one worker");
        assert_eq!(b.queue_cap, 2);
        assert!(b.prewarm.is_none(), "only shard 0 prewarms");
    }

    #[test]
    fn routes_stick_and_results_cache_on_the_home_shard() {
        let sharded = small(4);
        let spec = sleep_spec(1, 7);
        let (home, _) = sharded.router().route_spec(&spec).unwrap();
        let cold = sharded.evaluate(&spec).unwrap();
        assert!(!cold.cached);
        assert_eq!(cold.manifest.shard, Some(home as u32));
        assert!(cold.manifest.rerouted_from.is_none());
        assert!(cold.manifest.health_state.is_none());
        let warm = sharded.evaluate(&spec).unwrap();
        assert!(warm.cached);
        assert_eq!(warm.manifest.shard, Some(home as u32));
        let m = sharded.metrics();
        assert_eq!(m.total.requests, 2);
        assert_eq!(m.total.computations, 1);
        assert_eq!(
            m.shards[home].computations, 1,
            "work stays on the home shard"
        );
        sharded.shutdown();
    }

    #[test]
    fn hedged_read_adopts_a_result_computed_elsewhere() {
        let sharded = small(4);
        let spec = sleep_spec(1, 11);
        let (home, _) = sharded.router().route_spec(&spec).unwrap();
        let elsewhere = (home + 1) % sharded.shard_count();
        // Seed a *sibling* shard's cache directly, as a busy spillover
        // would have.
        sharded.shard_engines()[elsewhere].evaluate(&spec).unwrap();
        // Routed through the front door, the home shard misses locally,
        // hedges, and adopts the sibling's result without recomputing.
        let eval = sharded.evaluate(&spec).unwrap();
        assert!(eval.cached);
        assert_eq!(eval.manifest.shard, Some(home as u32));
        assert_eq!(eval.manifest.hedge_hit, Some(true));
        let m = sharded.metrics();
        assert_eq!(m.total.computations, 1, "one compute total, not two");
        assert_eq!(m.shards[home].hedge_hits, 1);
        sharded.shutdown();
    }

    #[test]
    fn busy_home_shard_spills_to_its_ring_successor() {
        // Tiny home shards: 1 worker, 1 queue slot each.
        let sharded = ShardedEngine::new(ShardConfig {
            shards: 2,
            engine: EngineConfig {
                workers: 2,
                queue_cap: 2,
                cache_cap: 64,
                ..Default::default()
            },
            ..Default::default()
        });
        // Find specs that all route to shard 0.
        let mut on_zero = Vec::new();
        let mut seed = 0u64;
        while on_zero.len() < 4 {
            let spec = sleep_spec(300, 1_000 + seed);
            if sharded.router().route_spec(&spec).unwrap().0 == 0 {
                on_zero.push(spec);
            }
            seed += 1;
        }
        // Occupy shard 0's worker and queue slot.
        let sharded = std::sync::Arc::new(sharded);
        let mut held = Vec::new();
        for spec in on_zero.iter().take(2).cloned() {
            let sharded = std::sync::Arc::clone(&sharded);
            held.push(std::thread::spawn(move || sharded.evaluate(&spec)));
        }
        let saturated = (0..400).any(|_| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            sharded.metrics().shards[0].queue_depth >= 1
        });
        assert!(saturated, "shard 0's queue slot must fill");
        // The third request would be rejected busy by shard 0; the
        // spillover answers it on shard 1 instead, with provenance.
        let spilled = sharded.evaluate_full(&on_zero[2]).unwrap();
        assert_eq!(spilled.manifest.shard, Some(1));
        assert_eq!(spilled.manifest.rerouted_from, Some(0));
        let m = sharded.metrics();
        assert!(m.shards[0].rejected_busy >= 1);
        assert!(m.shards[1].completed >= 1);
        assert!(m.health[0].reroutes >= 1, "the spill counts as a reroute");
        for h in held {
            h.join().unwrap().unwrap();
        }
        sharded.shutdown();
    }

    #[test]
    fn double_busy_walks_two_hops_and_propagates_a_hint() {
        // Both shards tiny: 1 worker + 1 queue slot each; saturate both
        // so the walk exhausts every live hop.
        let sharded = ShardedEngine::new(ShardConfig {
            shards: 2,
            engine: EngineConfig {
                workers: 2,
                queue_cap: 2,
                cache_cap: 64,
                ..Default::default()
            },
            ..Default::default()
        });
        let sharded = std::sync::Arc::new(sharded);
        // Two distinct long-running specs per shard (distinct seeds, so
        // single-flight dedup cannot collapse them).
        let mut pinned_specs = Vec::new();
        let mut per_shard = [0usize; 2];
        let mut seed = 0u64;
        while pinned_specs.len() < 4 {
            let spec = sleep_spec(400, 70_000 + seed);
            let home = sharded.router().route_spec(&spec).unwrap().0;
            if per_shard[home] < 2 {
                per_shard[home] += 1;
                pinned_specs.push(spec);
            }
            seed += 1;
        }
        let mut pinned = Vec::new();
        for spec in pinned_specs {
            let sharded = std::sync::Arc::clone(&sharded);
            pinned.push(std::thread::spawn(move || sharded.evaluate(&spec)));
        }
        let saturated = (0..400).any(|_| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            let m = sharded.metrics();
            m.shards[0].queue_depth >= 1 && m.shards[1].queue_depth >= 1
        });
        assert!(saturated, "both shards' queue slots must fill");
        // A fresh request finds its home busy, spills to the successor,
        // finds it busy too, and surfaces `busy` with the most
        // optimistic hint of the shards consulted.
        let probe = spec_homed_at(&sharded, 0, 1);
        let err = sharded.evaluate(&probe).unwrap_err();
        match err {
            EngineError::Busy { retry_after_ms } => {
                assert!(retry_after_ms > 0, "hint must be a real backoff");
            }
            other => panic!("expected busy after the double-busy walk, got {other:?}"),
        }
        let m = sharded.metrics();
        assert!(m.shards[0].rejected_busy >= 1, "home consulted");
        assert!(m.shards[1].rejected_busy >= 1, "successor consulted");
        for h in pinned {
            h.join().unwrap().unwrap();
        }
        sharded.shutdown();
    }

    /// Re-seeds `base` until it still homes on `shard` (the seed xor in
    /// the double-busy test can move it).
    fn spec_homed_at_like(
        sharded: &ShardedEngine,
        shard: usize,
        base: ScenarioSpec,
    ) -> ScenarioSpec {
        let mut spec = base;
        while sharded.router().route_spec(&spec).unwrap().0 != shard {
            spec.mc.seed = spec.mc.seed.wrapping_add(1);
        }
        spec
    }

    #[test]
    fn quarantine_ejects_readmit_restores_and_provenance_is_stamped() {
        let sharded = small(3);
        let spec = spec_homed_at(&sharded, 1, 1);
        let healthy = sharded.evaluate(&spec).unwrap();
        assert_eq!(healthy.manifest.shard, Some(1));

        assert!(sharded.quarantine(1), "manual eject");
        assert!(!sharded.router().is_live(1));
        assert_eq!(sharded.health()[1].state, "quarantined");

        // The home is ejected: the request serves elsewhere — adopted
        // via the hedge or recomputed — with identical results and
        // full provenance.
        let diverted = sharded.evaluate_full(&spec).unwrap();
        let served = diverted.manifest.shard.unwrap();
        assert_ne!(served, 1, "quarantined shard receives nothing");
        assert_eq!(diverted.manifest.rerouted_from, Some(1));
        assert_eq!(
            diverted.manifest.health_state.as_deref(),
            Some("quarantined")
        );
        assert_eq!(
            healthy.result.as_ref(),
            diverted.result.as_ref(),
            "rerouting never changes results"
        );
        assert!(sharded.health()[1].reroutes >= 1);

        // A quarantined shard keeps answering nothing even though its
        // cache partition still holds the result (hedges skip it).
        assert!(sharded.readmit(1), "manual re-admission");
        assert!(sharded.router().is_live(1));
        assert_eq!(sharded.health()[1].state, "healthy");
        let back = sharded.evaluate(&spec).unwrap();
        assert_eq!(back.manifest.shard, Some(1), "routing is restored");
        assert!(back.cached, "the preserved cache partition answers warm");
        sharded.shutdown();
    }

    #[test]
    fn hedge_probes_skip_quarantined_siblings() {
        let sharded = small(3);
        let spec = sleep_spec(1, 13);
        let (home, _) = sharded.router().route_spec(&spec).unwrap();
        let elsewhere = (home + 1) % sharded.shard_count();
        // Seed the sibling's cache, then quarantine it: the hedge must
        // not touch the wedged shard synchronously, even though its
        // (preserved) cache holds the answer.
        sharded.shard_engines()[elsewhere].evaluate(&spec).unwrap();
        assert!(sharded.quarantine(elsewhere));
        let eval = sharded.evaluate(&spec).unwrap();
        assert!(!eval.cached, "the quarantined sibling's hit is not adopted");
        assert_eq!(eval.manifest.shard, Some(home as u32));
        assert_eq!(eval.manifest.hedge_hit, Some(false));
        let m = sharded.metrics();
        assert_eq!(m.total.computations, 2, "recomputed rather than adopted");
        // Once re-admitted, the same sibling's cache is probed again.
        assert!(sharded.readmit(elsewhere));
        let spec2 = sleep_spec(1, 14);
        let (home2, _) = sharded.router().route_spec(&spec2).unwrap();
        let other2 = (home2 + 1) % sharded.shard_count();
        sharded.shard_engines()[other2].evaluate(&spec2).unwrap();
        let adopted = sharded.evaluate(&spec2).unwrap();
        assert_eq!(adopted.manifest.hedge_hit, Some(true));
        sharded.shutdown();
    }

    #[test]
    fn busy_spill_skips_a_quarantined_successor() {
        // 3 shards, 1 worker + 1 queue slot each; shard 1 quarantined,
        // shard 0 saturated: the spill from 0 must land on 2.
        let sharded = ShardedEngine::new(ShardConfig {
            shards: 3,
            engine: EngineConfig {
                workers: 3,
                queue_cap: 3,
                cache_cap: 64,
                ..Default::default()
            },
            ..Default::default()
        });
        assert!(sharded.quarantine(1));
        let sharded = std::sync::Arc::new(sharded);
        let mut held = Vec::new();
        for i in 0..2 {
            let spec = spec_homed_at(&sharded, 0, 300 + i);
            let sharded = std::sync::Arc::clone(&sharded);
            held.push(std::thread::spawn(move || sharded.evaluate(&spec)));
        }
        let saturated = (0..400).any(|_| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            sharded.metrics().shards[0].queue_depth >= 1
        });
        assert!(saturated, "shard 0's queue slot must fill");
        let spilled = sharded
            .evaluate_full(&spec_homed_at(&sharded, 0, 1))
            .unwrap();
        assert_eq!(
            spilled.manifest.shard,
            Some(2),
            "the spill walks past the quarantined successor"
        );
        for h in held {
            h.join().unwrap().unwrap();
        }
        sharded.shutdown();
    }

    #[test]
    fn breaker_trips_quarantine_and_probation_readmits() {
        // Supervision driven by hand: no sweep thread, tiny breaker.
        let sharded = ShardedEngine::new(ShardConfig {
            shards: 3,
            engine: EngineConfig {
                workers: 3,
                queue_cap: 12,
                cache_cap: 64,
                ..Default::default()
            },
            breaker: BreakerConfig {
                window: 4,
                threshold: 2,
                probes: 2,
            },
            supervise: false,
            ..Default::default()
        });
        let core = &sharded.core;

        // Two failures trip the breaker and quarantine shard 1.
        core.observe_outcome(1, true, false);
        assert_eq!(sharded.health()[1].state, "suspect", "half threshold");
        core.observe_outcome(1, true, false);
        assert_eq!(sharded.health()[1].state, "quarantined");
        assert!(!sharded.router().is_live(1));
        assert_eq!(sharded.health()[1].trips, 1);

        // The sweep respawns the engine and opens probation.
        core.sweep_respawns();
        let h = &sharded.health()[1];
        assert_eq!(h.state, "probation");
        assert_eq!(h.respawns, 1);
        assert!(!h.live, "probation shards stay out of the mask");
        assert_eq!(h.failures_in_window, 0, "probation starts clean");

        // Probe outcomes: one success is not enough; the second
        // re-admits and restores the live bit.
        core.observe_outcome(1, false, true);
        assert_eq!(sharded.health()[1].state, "probation");
        core.observe_outcome(1, false, true);
        let h = &sharded.health()[1];
        assert_eq!(h.state, "healthy");
        assert!(h.live);
        assert_eq!(h.resets, 1);
        sharded.shutdown();
    }

    #[test]
    fn a_probe_failure_retrips_and_the_last_live_shard_never_ejects() {
        let sharded = ShardedEngine::new(ShardConfig {
            shards: 2,
            engine: EngineConfig {
                workers: 2,
                queue_cap: 8,
                cache_cap: 16,
                ..Default::default()
            },
            breaker: BreakerConfig {
                window: 4,
                threshold: 2,
                probes: 1,
            },
            supervise: false,
            ..Default::default()
        });
        let core = &sharded.core;
        core.observe_outcome(0, true, false);
        core.observe_outcome(0, true, false);
        assert_eq!(sharded.health()[0].state, "quarantined");
        core.sweep_respawns();
        assert_eq!(sharded.health()[0].state, "probation");
        // The probe fails: straight back to quarantine, another trip.
        core.observe_outcome(0, true, true);
        let h = &sharded.health()[0];
        assert_eq!(h.state, "quarantined");
        assert_eq!(h.trips, 2);

        // Meanwhile shard 1 is the last live shard: its breaker may
        // trip but it can never be ejected.
        core.observe_outcome(1, true, false);
        core.observe_outcome(1, true, false);
        core.observe_outcome(1, true, false);
        assert!(sharded.router().is_live(1), "last live shard stays");
        assert_ne!(sharded.health()[1].state, "quarantined");
        sharded.shutdown();
    }

    #[test]
    fn probation_gates_admit_the_probe_ration_and_reroute_the_rest() {
        let sharded = ShardedEngine::new(ShardConfig {
            shards: 3,
            engine: EngineConfig {
                workers: 3,
                queue_cap: 12,
                cache_cap: 64,
                ..Default::default()
            },
            breaker: BreakerConfig {
                window: 4,
                threshold: 2,
                probes: 4,
            },
            supervise: false,
            ..Default::default()
        });
        let core = &sharded.core;
        core.observe_outcome(1, true, false);
        core.observe_outcome(1, true, false);
        core.sweep_respawns();
        assert_eq!(sharded.health()[1].state, "probation");

        // First home request after respawn is a probe (ticket 0), the
        // next three reroute.
        let spec = spec_homed_at(&sharded, 1, 1);
        let first = sharded.evaluate_full(&spec).unwrap();
        assert_eq!(first.manifest.shard, Some(1), "ticket 0 probes");
        assert_eq!(
            first.manifest.health_state.as_deref(),
            Some("probation"),
            "probes carry the serving shard's state"
        );
        for i in 0..3 {
            let other = sharded
                .evaluate_full(&spec_homed_at_like(&sharded, 1, sleep_spec(1, 90_000 + i)))
                .unwrap();
            assert_ne!(
                other.manifest.shard,
                Some(1),
                "off-ration home requests reroute"
            );
            assert_eq!(other.manifest.rerouted_from, Some(1));
        }
        sharded.shutdown();
    }

    #[test]
    fn metrics_expose_totals_and_per_shard_series() {
        let sharded = small(2);
        sharded.evaluate(&sleep_spec(1, 21)).unwrap();
        sharded.evaluate(&sleep_spec(1, 22)).unwrap();
        let m = sharded.metrics();
        let v = m.to_value().unwrap();
        assert_eq!(v["requests"], 2);
        let shards = v["shards"].as_array().unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0]["shard"], 0);
        assert_eq!(shards[1]["shard"], 1);
        assert!(
            shards[0].get("stages").is_none(),
            "per-shard stages omitted"
        );
        let req_sum: u64 = shards.iter().map(|s| s["requests"].as_u64().unwrap()).sum();
        assert_eq!(req_sum, 2, "per-shard requests sum to the total");
        let health = v["health"].as_array().unwrap();
        assert_eq!(health.len(), 2);
        assert_eq!(health[0]["state"], "healthy");
        assert_eq!(health[0]["live"], true);

        let text = m.to_prometheus();
        assert!(text.contains("\nstormsim_requests_total 2\n"), "{text}");
        assert!(
            text.contains("stormsim_shard_requests_total{shard=\"0\"}"),
            "{text}"
        );
        assert!(
            text.contains("stormsim_shard_requests_total{shard=\"1\"}"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE stormsim_shard_queue_depth gauge"),
            "{text}"
        );
        assert!(
            text.contains("stormsim_shard_health_state{shard=\"0\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("stormsim_shard_breaker_trips_total{shard=\"1\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("stormsim_shard_reroutes_total{shard=\"0\"} 0"),
            "{text}"
        );
        sharded.shutdown();
    }

    #[test]
    fn health_value_reflects_quarantine() {
        let sharded = small(2);
        let svc: &dyn ScenarioService = &sharded;
        let v = svc.health_value();
        assert_eq!(v["healthy"], true, "{v}");
        assert_eq!(v["shards"].as_array().unwrap().len(), 2);

        assert!(sharded.quarantine(1));
        let v = svc.health_value();
        assert_eq!(v["healthy"], false, "{v}");
        assert_eq!(v["shards"][1]["state"], "quarantined", "{v}");
        assert_eq!(v["shards"][1]["live"], false, "{v}");
        assert_eq!(v["shards"][0]["state"], "healthy", "{v}");
        sharded.shutdown();
    }

    #[test]
    fn traced_hedged_requests_cross_the_shard_boundary_in_one_trace() {
        let sharded = small(4);
        let spec = sleep_spec(1, 41);
        let (home, _) = sharded.router().route_spec(&spec).unwrap();
        let elsewhere = (home + 1) % sharded.shard_count();
        // Seed a sibling's cache so the traced front-door request hits
        // via the hedge, crossing the shard boundary inside one trace.
        sharded.shard_engines()[elsewhere].evaluate(&spec).unwrap();

        let handle = solarstorm_obs::TraceHandle::begin("request", None);
        let eval = sharded.evaluate(&spec).unwrap();
        let done = handle.finish(None);
        assert!(eval.cached);
        assert_eq!(eval.manifest.hedge_hit, Some(true));

        // The routing decision is a span directly under the request.
        let route = done.spans.iter().find(|s| s.name == "route").unwrap();
        assert_eq!(route.parent, 1);
        assert!(route.attrs.iter().any(|(k, v)| *k == "home"
            && matches!(v, solarstorm_obs::FieldValue::U64(n) if *n == home as u64)));

        // The home shard's eval span names shard A...
        let eval_span = done.spans.iter().find(|s| s.name == "shard_eval").unwrap();
        assert!(eval_span.attrs.iter().any(|(k, v)| *k == "shard"
            && matches!(v, solarstorm_obs::FieldValue::U64(n) if *n == home as u64)));

        // ...and its hedge-probe child names shard B as the source.
        let probe = done.spans.iter().find(|s| s.name == "hedge_probe").unwrap();
        assert_eq!(
            probe.parent, eval_span.id,
            "probe nests under the shard eval"
        );
        assert!(probe
            .attrs
            .iter()
            .any(|(k, v)| *k == "hit" && matches!(v, solarstorm_obs::FieldValue::Bool(true))));
        assert!(probe.attrs.iter().any(|(k, v)| *k == "src_shard"
            && matches!(v, solarstorm_obs::FieldValue::U64(n) if *n == elsewhere as u64)));
        sharded.shutdown();
    }

    #[test]
    fn single_shard_is_just_an_engine() {
        let sharded = small(1);
        let eval = sharded.evaluate(&sleep_spec(1, 31)).unwrap();
        assert_eq!(eval.manifest.shard, Some(0));
        assert!(
            eval.manifest.hedge_hit.is_none(),
            "one shard has no siblings to hedge against"
        );
        assert_eq!(sharded.health().len(), 1);
        assert_eq!(sharded.health()[0].state, "healthy");
        sharded.shutdown();
    }
}
