//! Sliding-window circuit breaker: the trip decision behind shard
//! quarantine.
//!
//! Each shard owns one [`Breaker`]: a fixed ring buffer over the last
//! `window` request outcomes observed on that shard. Every admitted
//! request records one outcome — success, or a typed failure signal
//! (panic, deadline overrun, busy/degraded shed, compute error). When
//! the window holds at least `threshold` failures the breaker *trips*
//! and the supervision layer quarantines the shard (ejects it from the
//! live routing mask). The window is outcome-counted, not time-based,
//! so the decision is deterministic under test replay: the same
//! sequence of outcomes always trips at the same request.

/// Supervision tuning: the breaker window, its trip threshold, and the
/// probation ration. Shared by every shard of a runtime; exposed on the
/// CLI as `--breaker-window`, `--breaker-threshold`, and
/// `--quarantine-probes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Outcomes the sliding window holds (clamped to ≥ 1).
    pub window: usize,
    /// Failures within the window that trip the breaker (clamped to
    /// `1..=window`). Half this count already marks the shard
    /// *suspect* — observably degraded, still routed to.
    pub threshold: usize,
    /// Successful half-open probation probes a respawned shard must
    /// answer before it is re-admitted to routing (clamped to ≥ 1).
    pub probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 32,
            threshold: 8,
            probes: 4,
        }
    }
}

impl BreakerConfig {
    /// Clamps the knobs into their valid ranges (see the field docs).
    pub(crate) fn normalized(self) -> BreakerConfig {
        let window = self.window.max(1);
        BreakerConfig {
            window,
            threshold: self.threshold.clamp(1, window),
            probes: self.probes.max(1),
        }
    }
}

/// The sliding window itself. Not thread-safe — the owning
/// `ShardHealth` wraps it in a mutex.
#[derive(Debug)]
pub(crate) struct Breaker {
    window: usize,
    threshold: usize,
    /// Ring buffer of outcomes, `true` = failure.
    outcomes: Vec<bool>,
    /// Next slot to write (the oldest outcome once the window is full).
    head: usize,
    /// Outcomes recorded so far, saturating at `window`.
    occupancy: usize,
    /// Failures currently inside the window.
    failures: usize,
}

impl Breaker {
    pub(crate) fn new(cfg: BreakerConfig) -> Breaker {
        let cfg = cfg.normalized();
        Breaker {
            window: cfg.window,
            threshold: cfg.threshold,
            outcomes: vec![false; cfg.window],
            head: 0,
            occupancy: 0,
            failures: 0,
        }
    }

    /// Records one outcome, evicting the oldest once the window is
    /// full. Returns `true` when the window now holds at least
    /// `threshold` failures — the trip condition.
    pub(crate) fn record(&mut self, failure: bool) -> bool {
        if self.occupancy == self.window {
            if self.outcomes[self.head] {
                self.failures -= 1;
            }
        } else {
            self.occupancy += 1;
        }
        self.outcomes[self.head] = failure;
        self.head = (self.head + 1) % self.window;
        if failure {
            self.failures += 1;
        }
        self.failures >= self.threshold
    }

    /// Whether the window holds at least half the trip threshold of
    /// failures — the *suspect* condition.
    pub(crate) fn suspicious(&self) -> bool {
        self.failures > 0 && self.failures * 2 >= self.threshold
    }

    /// Failures currently inside the window.
    pub(crate) fn failures(&self) -> usize {
        self.failures
    }

    /// Outcomes currently inside the window (≤ `window`).
    pub(crate) fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// The window size.
    pub(crate) fn window(&self) -> usize {
        self.window
    }

    /// The trip threshold.
    pub(crate) fn threshold(&self) -> usize {
        self.threshold
    }

    /// Empties the window — a respawned shard starts probation with a
    /// clean slate.
    pub(crate) fn reset(&mut self) {
        self.outcomes.fill(false);
        self.head = 0;
        self.occupancy = 0;
        self.failures = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(window: usize, threshold: usize) -> Breaker {
        Breaker::new(BreakerConfig {
            window,
            threshold,
            probes: 1,
        })
    }

    #[test]
    fn trips_at_the_threshold_and_not_before() {
        let mut b = breaker(8, 3);
        assert!(!b.record(true));
        assert!(!b.record(true));
        assert!(!b.record(false));
        assert!(b.record(true), "third failure in the window trips");
        assert_eq!(b.failures(), 3);
    }

    #[test]
    fn old_outcomes_slide_out_of_the_window() {
        let mut b = breaker(4, 3);
        b.record(true);
        b.record(true);
        // Four successes push both failures out of the 4-wide window.
        for _ in 0..4 {
            assert!(!b.record(false));
        }
        assert_eq!(b.failures(), 0);
        assert!(!b.record(true));
        assert!(!b.record(true));
        assert!(b.record(true));
    }

    #[test]
    fn suspect_at_half_threshold() {
        let mut b = breaker(8, 4);
        assert!(!b.suspicious());
        b.record(true);
        assert!(!b.suspicious());
        b.record(true);
        assert!(b.suspicious(), "2 of threshold 4 marks suspect");
        b.reset();
        assert!(!b.suspicious());
        assert_eq!(b.occupancy(), 0);
    }

    #[test]
    fn config_clamps_into_valid_ranges() {
        let cfg = BreakerConfig {
            window: 0,
            threshold: 99,
            probes: 0,
        }
        .normalized();
        assert_eq!(cfg.window, 1);
        assert_eq!(cfg.threshold, 1, "threshold clamps to the window");
        assert_eq!(cfg.probes, 1);
        let b = Breaker::new(cfg);
        assert_eq!(b.window(), 1);
        assert_eq!(b.threshold(), 1);
        // A 1-wide, 1-threshold breaker trips on any failure.
        let mut b = b;
        assert!(b.record(true));
        assert!(!b.record(false));
    }

    #[test]
    fn defaults_are_sane() {
        let d = BreakerConfig::default();
        assert_eq!(d.normalized(), d, "defaults are already in range");
        assert!(d.threshold <= d.window);
    }
}
