//! Routing scenario requests to shards.
//!
//! The [`Router`] is a pure function from spec content hashes to shard
//! indices — no locks, no I/O, no blocking — deliberately, so the same
//! value can later sit inside a readiness-driven reactor (route on
//! accept, dispatch to a shard's queue) without the blocking TCP
//! frontend's thread-per-connection shape leaking into it.

use crate::ring::HashRing;
use solarstorm_engine::{canon, EngineError, ScenarioSpec};

/// Virtual nodes per shard. 64 keeps the per-shard load within a few
/// percent of ideal while the ring stays small enough that a route is
/// one binary search over `64 × shards` points.
pub const DEFAULT_REPLICAS: usize = 64;

/// Maps spec content hashes to shard indices over a stable
/// [`HashRing`].
#[derive(Debug, Clone)]
pub struct Router {
    ring: HashRing,
}

impl Router {
    /// A router over `shards` shards with [`DEFAULT_REPLICAS`] virtual
    /// nodes each.
    pub fn new(shards: usize) -> Router {
        Router::with_replicas(shards, DEFAULT_REPLICAS)
    }

    /// A router with an explicit virtual-node count (clamped to ≥ 1).
    pub fn with_replicas(shards: usize, replicas: usize) -> Router {
        Router {
            ring: HashRing::new(shards, replicas),
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.ring.shards()
    }

    /// The shard owning a spec content hash.
    pub fn route(&self, spec_hash: u64) -> usize {
        self.ring.route(spec_hash) as usize
    }

    /// The next shard clockwise — the busy-spillover target: adjacent
    /// on the ring, so a hot shard's overflow lands on one neighbor
    /// instead of splattering across the fleet.
    pub fn successor(&self, shard: usize) -> usize {
        (shard + 1) % self.shards()
    }

    /// Routes a full spec: hashes it exactly as the engine does
    /// (deadline cleared — the deadline is not part of a scenario's
    /// identity) and returns the owning shard with the hash.
    ///
    /// Errors only if the spec cannot be serialized, which the engine
    /// would reject as invalid anyway.
    pub fn route_spec(&self, spec: &ScenarioSpec) -> Result<(usize, u64), EngineError> {
        let hash_spec = ScenarioSpec {
            deadline_ms: None,
            ..spec.clone()
        };
        let (_canon, hash) = canon::content_hash(&hash_spec)
            .map_err(|e| EngineError::InvalidSpec(format!("unserializable spec: {e}")))?;
        Ok((self.route(hash), hash))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_spec_ignores_the_deadline() {
        let router = Router::new(4);
        let bare = ScenarioSpec::default();
        let deadlined = ScenarioSpec {
            deadline_ms: Some(250),
            ..Default::default()
        };
        let (shard_a, hash_a) = router.route_spec(&bare).unwrap();
        let (shard_b, hash_b) = router.route_spec(&deadlined).unwrap();
        assert_eq!(hash_a, hash_b, "deadline must not change the content hash");
        assert_eq!(shard_a, shard_b);
        assert!(shard_a < 4);
    }

    #[test]
    fn successor_wraps() {
        let router = Router::new(3);
        assert_eq!(router.successor(0), 1);
        assert_eq!(router.successor(2), 0);
        let single = Router::new(1);
        assert_eq!(single.successor(0), 0);
    }
}
