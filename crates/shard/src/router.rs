//! Routing scenario requests to shards.
//!
//! The [`Router`] is a pure function from spec content hashes to shard
//! indices — no locks, no I/O, no blocking — deliberately, so the same
//! value can later sit inside a readiness-driven reactor (route on
//! accept, dispatch to a shard's queue) without the blocking TCP
//! frontend's thread-per-connection shape leaking into it.
//!
//! The one concession to dynamism is the *live mask*: a single atomic
//! bitmask the supervision layer flips when it quarantines or re-admits
//! a shard. The pure hash route is computed first, exactly as before;
//! the mask is consulted only to skip dead shards' ring points, which
//! remaps a quarantined shard's keys to their ring successor — ring
//! growth run in reverse (see [`HashRing::route_masked`]) — and moves
//! nothing else. Routing stays deterministic given a mask value, and a
//! full mask routes bit-identically to the maskless ring.

use crate::ring::HashRing;
use solarstorm_engine::{canon, EngineError, ScenarioSpec};
use std::sync::atomic::{AtomicU64, Ordering};

/// Virtual nodes per shard. 64 keeps the per-shard load within a few
/// percent of ideal while the ring stays small enough that a route is
/// one binary search over `64 × shards` points.
pub const DEFAULT_REPLICAS: usize = 64;

/// Maps spec content hashes to shard indices over a stable
/// [`HashRing`], filtered through the dynamic live mask.
#[derive(Debug)]
pub struct Router {
    ring: HashRing,
    /// Bit `s` set ⇒ shard `s` is live (in routing). Only the first 64
    /// shards are maskable; shards ≥ 64 are always live — supervision
    /// covers fleets far smaller than that, and the limit keeps the
    /// mask one lock-free word.
    live: AtomicU64,
}

impl Clone for Router {
    fn clone(&self) -> Router {
        Router {
            ring: self.ring.clone(),
            live: AtomicU64::new(self.live.load(Ordering::Acquire)),
        }
    }
}

impl Router {
    /// A router over `shards` shards with [`DEFAULT_REPLICAS`] virtual
    /// nodes each; every shard starts live.
    pub fn new(shards: usize) -> Router {
        Router::with_replicas(shards, DEFAULT_REPLICAS)
    }

    /// A router with an explicit virtual-node count (clamped to ≥ 1);
    /// every shard starts live.
    pub fn with_replicas(shards: usize, replicas: usize) -> Router {
        let ring = HashRing::new(shards, replicas);
        let n = ring.shards();
        let mask = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
        Router {
            ring,
            live: AtomicU64::new(mask),
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.ring.shards()
    }

    /// The current live mask (bit `s` ⇒ shard `s` live; bits at or
    /// above the shard count are meaningless).
    pub fn live_mask(&self) -> u64 {
        self.live.load(Ordering::Acquire)
    }

    /// Whether a shard is currently live (shards ≥ 64 always are).
    pub fn is_live(&self, shard: usize) -> bool {
        shard >= 64 || self.live_mask() & (1u64 << shard) != 0
    }

    /// How many of the routable shards are live.
    pub fn live_count(&self) -> usize {
        let n = self.shards();
        let maskable = n.min(64);
        let masked = self.live_mask() & mask_of(maskable);
        masked.count_ones() as usize + n.saturating_sub(64)
    }

    /// Atomically clears a shard's live bit — ejecting it from routing
    /// — unless it is the last live shard (or is already ejected, or
    /// cannot be ejected because it is ≥ 64). Returns whether the bit
    /// was cleared; this is the linearization point for quarantine, so
    /// concurrent breaker trips elect exactly one winner.
    pub fn try_eject(&self, shard: usize) -> bool {
        if shard >= 64 || shard >= self.shards() {
            return false;
        }
        let bit = 1u64 << shard;
        let routable = mask_of(self.shards().min(64));
        let unmaskable_shards = self.shards() > 64;
        self.live
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |mask| {
                let live = mask & routable;
                if live & bit == 0 {
                    return None; // already ejected
                }
                if live == bit && !unmaskable_shards {
                    return None; // never eject the last live shard
                }
                Some(mask & !bit)
            })
            .is_ok()
    }

    /// Sets a shard's live bit (re-admission after probation). No-op
    /// for shards ≥ 64, which are always live.
    pub fn set_live(&self, shard: usize) {
        if shard < 64 && shard < self.shards() {
            self.live.fetch_or(1u64 << shard, Ordering::AcqRel);
        }
    }

    /// The shard owning a spec content hash, ignoring liveness — the
    /// *pure home*, stable across quarantine and recovery.
    pub fn route(&self, spec_hash: u64) -> usize {
        self.ring.route(spec_hash) as usize
    }

    /// The shard that should serve a spec content hash right now: the
    /// pure home when it is live, otherwise the first live shard
    /// clockwise on the ring (minimal remap — only dead shards' keys
    /// move; see [`HashRing::route_masked`]).
    pub fn route_live(&self, spec_hash: u64) -> usize {
        self.ring.route_masked(spec_hash, self.live_mask()) as usize
    }

    /// The next shard clockwise — the busy-spillover target: adjacent
    /// on the ring, so a hot shard's overflow lands on one neighbor
    /// instead of splattering across the fleet.
    pub fn successor(&self, shard: usize) -> usize {
        (shard + 1) % self.shards()
    }

    /// The next *live* shard clockwise after `shard`, skipping
    /// quarantined shards. Returns `shard` itself when no other shard
    /// is live (the caller then has nowhere to spill or retry).
    pub fn successor_live(&self, shard: usize) -> usize {
        let n = self.shards();
        let mask = self.live_mask();
        for off in 1..n {
            let candidate = (shard + off) % n;
            if candidate >= 64 || mask & (1u64 << candidate) != 0 {
                return candidate;
            }
        }
        shard
    }

    /// Routes a full spec: hashes it exactly as the engine does
    /// (deadline and trace flag cleared — neither is part of a
    /// scenario's identity) and returns the *pure home* shard with the
    /// hash. Callers that honour quarantine pass the hash on to
    /// [`Router::route_live`].
    ///
    /// Errors only if the spec cannot be serialized, which the engine
    /// would reject as invalid anyway.
    pub fn route_spec(&self, spec: &ScenarioSpec) -> Result<(usize, u64), EngineError> {
        let hash_spec = ScenarioSpec {
            deadline_ms: None,
            trace: false,
            ..spec.clone()
        };
        let (_canon, hash) = canon::content_hash(&hash_spec)
            .map_err(|e| EngineError::InvalidSpec(format!("unserializable spec: {e}")))?;
        Ok((self.route(hash), hash))
    }
}

/// A mask with the low `n` bits set (`n ≤ 64`).
fn mask_of(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_spec_ignores_the_deadline_and_trace_flag() {
        let router = Router::new(4);
        let bare = ScenarioSpec::default();
        let deadlined = ScenarioSpec {
            deadline_ms: Some(250),
            ..Default::default()
        };
        let traced = ScenarioSpec {
            trace: true,
            ..Default::default()
        };
        let (shard_a, hash_a) = router.route_spec(&bare).unwrap();
        let (shard_b, hash_b) = router.route_spec(&deadlined).unwrap();
        let (shard_c, hash_c) = router.route_spec(&traced).unwrap();
        assert_eq!(hash_a, hash_b, "deadline must not change the content hash");
        assert_eq!(
            hash_a, hash_c,
            "trace flag must not change the content hash"
        );
        assert_eq!(shard_a, shard_b);
        assert_eq!(shard_a, shard_c);
        assert!(shard_a < 4);
    }

    #[test]
    fn successor_wraps() {
        let router = Router::new(3);
        assert_eq!(router.successor(0), 1);
        assert_eq!(router.successor(2), 0);
        let single = Router::new(1);
        assert_eq!(single.successor(0), 0);
    }

    #[test]
    fn all_shards_start_live() {
        let router = Router::new(3);
        assert_eq!(router.live_mask(), 0b111);
        assert_eq!(router.live_count(), 3);
        for s in 0..3 {
            assert!(router.is_live(s));
        }
    }

    #[test]
    fn eject_remaps_to_the_ring_successor_and_readmit_restores() {
        let router = Router::new(3);
        // Find a hash homed on shard 1.
        let hash = (0..10_000u64)
            .find(|&h| router.route(h) == 1)
            .expect("shard 1 owns some keys");
        assert_eq!(router.route_live(hash), 1);

        assert!(router.try_eject(1));
        assert!(!router.is_live(1));
        assert_eq!(router.live_count(), 2);
        let diverted = router.route_live(hash);
        assert_ne!(diverted, 1, "ejected shard receives nothing");
        assert_eq!(router.route(hash), 1, "the pure home never changes");

        router.set_live(1);
        assert!(router.is_live(1));
        assert_eq!(router.route_live(hash), 1, "re-admission restores routing");
    }

    #[test]
    fn eject_is_single_winner_and_never_takes_the_last_shard() {
        let router = Router::new(2);
        assert!(router.try_eject(0));
        assert!(!router.try_eject(0), "second eject of the same shard loses");
        assert!(
            !router.try_eject(1),
            "the last live shard cannot be ejected"
        );
        assert!(router.is_live(1));
        let single = Router::new(1);
        assert!(!single.try_eject(0));
    }

    #[test]
    fn successor_live_skips_ejected_shards() {
        let router = Router::new(4);
        assert_eq!(router.successor_live(0), 1);
        router.try_eject(1);
        assert_eq!(router.successor_live(0), 2, "dead successor is skipped");
        router.try_eject(2);
        assert_eq!(router.successor_live(0), 3);
        router.try_eject(3);
        assert_eq!(
            router.successor_live(0),
            0,
            "no live successor folds back to the shard itself"
        );
    }

    #[test]
    fn clones_carry_the_mask_value_but_not_the_atomic() {
        let router = Router::new(3);
        router.try_eject(2);
        let copy = router.clone();
        assert_eq!(copy.live_mask(), router.live_mask());
        copy.set_live(2);
        assert!(copy.is_live(2));
        assert!(!router.is_live(2), "clones have independent masks");
    }
}
