//! Per-shard health: the supervision state machine and its counters.
//!
//! Every shard of a [`crate::ShardedEngine`] owns one [`ShardHealth`]
//! that walks a four-state machine driven by the sliding-window
//! [`crate::breaker::Breaker`]:
//!
//! ```text
//! healthy ──(window half-full of failures)──▶ suspect
//! healthy/suspect ──(breaker trips)──▶ quarantined   (ejected from routing)
//! quarantined ──(supervisor respawns the engine)──▶ probation
//! probation ──(ration of real probes all succeed)──▶ healthy (re-admitted)
//! probation ──(any probe fails)──▶ quarantined       (breaker re-trips)
//! ```
//!
//! `suspect` is observability, not policy: the shard keeps serving, the
//! state shows up in metrics and manifests so operators see degradation
//! before the trip. `quarantined` clears the shard's bit in the
//! router's live mask, so the pure consistent-hash route remaps to the
//! ring successor. `probation` is half-open: the shard stays out of the
//! mask, but a small ration of the requests whose hash home it is run
//! on it for real, and their outcomes decide re-admission.

use crate::breaker::{Breaker, BreakerConfig};
use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// One in every `PROBE_RATION` requests homed at a probation shard is
/// admitted to it as a half-open probe; the rest reroute to the live
/// successor as during quarantine. The first request after respawn is
/// always a probe (ticket 0), which keeps recovery tests deterministic.
pub(crate) const PROBE_RATION: u64 = 4;

/// Supervision state of one shard. See the module docs for the
/// transition diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Serving normally; in the router's live mask.
    Healthy,
    /// Failure window half-way to the trip threshold. Still live —
    /// this state exists to be observed, not to change routing.
    Suspect,
    /// Breaker tripped: ejected from the live mask, awaiting respawn.
    Quarantined,
    /// Respawned, half-open: out of the mask, admitting only the probe
    /// ration of its home traffic.
    Probation,
}

impl HealthState {
    /// Wire/metric label (`healthy`, `suspect`, `quarantined`,
    /// `probation`).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Quarantined => "quarantined",
            HealthState::Probation => "probation",
        }
    }

    /// Gauge encoding for `stormsim_shard_health_state` (0 healthy,
    /// 1 suspect, 2 quarantined, 3 probation).
    pub fn code(self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Suspect => 1,
            HealthState::Quarantined => 2,
            HealthState::Probation => 3,
        }
    }

    fn from_code(code: u8) -> HealthState {
        match code {
            1 => HealthState::Suspect,
            2 => HealthState::Quarantined,
            3 => HealthState::Probation,
            _ => HealthState::Healthy,
        }
    }
}

/// Point-in-time view of one shard's supervision state, served by the
/// NDJSON `health` request, the `/health` HTTP route, and (in part) the
/// Prometheus exposition.
#[derive(Debug, Clone, Serialize)]
pub struct HealthSnapshot {
    /// Shard index.
    pub shard: u32,
    /// State label: `healthy`, `suspect`, `quarantined`, `probation`.
    pub state: String,
    /// Whether the shard's bit is set in the router's live mask.
    pub live: bool,
    /// Breaker window size (outcomes).
    pub window: usize,
    /// Outcomes currently held in the window.
    pub occupancy: usize,
    /// Failures currently inside the window.
    pub failures_in_window: usize,
    /// Failures that trip the breaker.
    pub threshold: usize,
    /// Times the breaker tripped (quarantine entries).
    pub trips: u64,
    /// Times the shard was re-admitted after probation.
    pub resets: u64,
    /// Requests homed here but served elsewhere (eject remaps, busy
    /// spillover, and failure retries all count).
    pub reroutes: u64,
    /// Engine respawns the supervisor performed for this shard.
    pub respawns: u64,
    /// Successful probes in the current probation round.
    pub probes_done: u64,
    /// Successful probes required to re-admit.
    pub probes_required: u32,
}

/// Supervision bookkeeping for one shard: state, breaker, counters.
/// All methods take `&self`; cross-thread coordination is atomics plus
/// one short-lived mutex around the breaker window.
#[derive(Debug)]
pub(crate) struct ShardHealth {
    state: AtomicU8,
    breaker: Mutex<Breaker>,
    /// Breaker trips (entries into quarantine).
    pub(crate) trips: AtomicU64,
    /// Breaker resets (re-admissions after probation).
    pub(crate) resets: AtomicU64,
    /// Requests homed here that another shard answered.
    pub(crate) reroutes: AtomicU64,
    /// Engine respawns performed for this shard.
    pub(crate) respawns: AtomicU64,
    /// Successful probes in the current probation round.
    probe_successes: AtomicU64,
    /// Monotonic ticket for the probation ration.
    probe_ticket: AtomicU64,
    /// Set on quarantine when the supervisor should respawn the engine;
    /// consumed by the sweep.
    needs_respawn: AtomicBool,
}

impl ShardHealth {
    pub(crate) fn new(cfg: BreakerConfig) -> ShardHealth {
        ShardHealth {
            state: AtomicU8::new(HealthState::Healthy.code()),
            breaker: Mutex::new(Breaker::new(cfg)),
            trips: AtomicU64::new(0),
            resets: AtomicU64::new(0),
            reroutes: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            probe_successes: AtomicU64::new(0),
            probe_ticket: AtomicU64::new(0),
            needs_respawn: AtomicBool::new(false),
        }
    }

    pub(crate) fn state(&self) -> HealthState {
        HealthState::from_code(self.state.load(Ordering::Acquire))
    }

    fn set_state(&self, state: HealthState) {
        self.state.store(state.code(), Ordering::Release);
    }

    /// Feeds one admitted request's outcome into the window, walking
    /// the healthy ⇄ suspect edge as the failure density crosses half
    /// the threshold. Returns `true` when this outcome tripped the
    /// breaker while the shard was admitting traffic — the caller then
    /// tries to quarantine (the router's live mask is the arbiter, so
    /// concurrent trips elect exactly one winner).
    pub(crate) fn record_outcome(&self, failure: bool) -> bool {
        let (tripped, suspicious) = {
            let mut breaker = lock(&self.breaker);
            let tripped = breaker.record(failure);
            (tripped, breaker.suspicious())
        };
        match self.state() {
            HealthState::Healthy if suspicious => self.set_state(HealthState::Suspect),
            HealthState::Suspect if !suspicious => self.set_state(HealthState::Healthy),
            _ => {}
        }
        failure && tripped && matches!(self.state(), HealthState::Healthy | HealthState::Suspect)
    }

    /// → quarantined. Returns `true` for the transition winner (the
    /// caller that should bump `trips` and emit events); `false` when
    /// the shard was already quarantined. `respawn` requests a
    /// supervisor respawn — manual quarantine passes `false` so the
    /// shard stays ejected until explicitly re-admitted.
    pub(crate) fn enter_quarantine(&self, respawn: bool) -> bool {
        let prev = self
            .state
            .swap(HealthState::Quarantined.code(), Ordering::AcqRel);
        if prev == HealthState::Quarantined.code() {
            return false;
        }
        if respawn {
            self.needs_respawn.store(true, Ordering::Release);
        }
        true
    }

    /// Consumes the pending respawn request, if any (supervisor sweep).
    pub(crate) fn take_respawn_request(&self) -> bool {
        self.needs_respawn.swap(false, Ordering::AcqRel)
    }

    /// → probation with a clean window and a fresh probe round
    /// (supervisor, after swapping in the respawned engine).
    pub(crate) fn enter_probation(&self) {
        lock(&self.breaker).reset();
        self.probe_successes.store(0, Ordering::Release);
        self.probe_ticket.store(0, Ordering::Release);
        self.set_state(HealthState::Probation);
    }

    /// Probation gate: draws a ticket and admits every
    /// [`PROBE_RATION`]-th home request as a half-open probe.
    pub(crate) fn admit_probe(&self) -> bool {
        self.state() == HealthState::Probation
            && self.probe_ticket.fetch_add(1, Ordering::AcqRel) % PROBE_RATION == 0
    }

    /// Counts one successful probe; `true` once the round has enough
    /// to re-admit.
    pub(crate) fn note_probe_success(&self, required: u32) -> bool {
        self.probe_successes.fetch_add(1, Ordering::AcqRel) + 1 >= u64::from(required)
    }

    /// → healthy, breaker reset. Compare-and-swap from probation so
    /// concurrent probes elect one re-admission winner; `false` if the
    /// state moved elsewhere first (e.g. a probe failure re-tripped).
    pub(crate) fn readmit(&self) -> bool {
        let won = self
            .state
            .compare_exchange(
                HealthState::Probation.code(),
                HealthState::Healthy.code(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok();
        if won {
            lock(&self.breaker).reset();
        }
        won
    }

    /// Unconditional reset to healthy (manual re-admission): clears the
    /// window, the probe round, and any pending respawn request.
    pub(crate) fn force_healthy(&self) {
        lock(&self.breaker).reset();
        self.probe_successes.store(0, Ordering::Release);
        self.probe_ticket.store(0, Ordering::Release);
        self.needs_respawn.store(false, Ordering::Release);
        self.set_state(HealthState::Healthy);
    }

    /// Point-in-time snapshot for the health endpoints.
    pub(crate) fn snapshot(&self, shard: u32, live: bool, probes_required: u32) -> HealthSnapshot {
        let (window, occupancy, failures, threshold) = {
            let breaker = lock(&self.breaker);
            (
                breaker.window(),
                breaker.occupancy(),
                breaker.failures(),
                breaker.threshold(),
            )
        };
        HealthSnapshot {
            shard,
            state: self.state().as_str().to_string(),
            live,
            window,
            occupancy,
            failures_in_window: failures,
            threshold,
            trips: self.trips.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            reroutes: self.reroutes.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            probes_done: self.probe_successes.load(Ordering::Relaxed),
            probes_required,
        }
    }
}

/// Breaker mutex guard; a poisoned lock still yields the data (the
/// breaker holds plain counters, every partial update is still sane).
fn lock(breaker: &Mutex<Breaker>) -> std::sync::MutexGuard<'_, Breaker> {
    match breaker.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn health(window: usize, threshold: usize) -> ShardHealth {
        ShardHealth::new(BreakerConfig {
            window,
            threshold,
            probes: 2,
        })
    }

    #[test]
    fn failures_walk_healthy_suspect_and_trip() {
        let h = health(8, 4);
        assert_eq!(h.state(), HealthState::Healthy);
        assert!(!h.record_outcome(true));
        assert_eq!(h.state(), HealthState::Healthy);
        assert!(!h.record_outcome(true));
        assert_eq!(h.state(), HealthState::Suspect, "half threshold");
        assert!(!h.record_outcome(true));
        assert!(h.record_outcome(true), "fourth failure trips");
        // The caller quarantines on trip.
        assert!(h.enter_quarantine(true));
        assert_eq!(h.state(), HealthState::Quarantined);
        assert!(!h.enter_quarantine(true), "second entry loses the race");
        assert!(h.take_respawn_request());
        assert!(!h.take_respawn_request(), "request is consumed once");
    }

    #[test]
    fn successes_clear_the_suspect_flag() {
        let h = health(4, 4);
        h.record_outcome(true);
        h.record_outcome(true);
        assert_eq!(h.state(), HealthState::Suspect);
        h.record_outcome(false);
        h.record_outcome(false);
        // Window now [t, t, f, f] → still suspicious (2*2 >= 4)…
        assert_eq!(h.state(), HealthState::Suspect);
        h.record_outcome(false);
        // …until a failure slides out.
        assert_eq!(h.state(), HealthState::Healthy);
    }

    #[test]
    fn probation_admits_the_ration_and_readmits_after_enough_successes() {
        let h = health(8, 2);
        h.enter_quarantine(true);
        h.enter_probation();
        assert_eq!(h.state(), HealthState::Probation);
        // Ticket 0 is a probe; the next PROBE_RATION-1 are not.
        assert!(h.admit_probe(), "first home request probes");
        for _ in 1..PROBE_RATION {
            assert!(!h.admit_probe());
        }
        assert!(h.admit_probe(), "ration wraps");
        assert!(!h.note_probe_success(2));
        assert!(h.note_probe_success(2), "second success completes");
        assert!(h.readmit());
        assert_eq!(h.state(), HealthState::Healthy);
        assert!(!h.readmit(), "readmit is a one-shot CAS");
        assert!(!h.admit_probe(), "healthy shards never probe");
    }

    #[test]
    fn a_probe_failure_retrips_from_probation() {
        let h = health(8, 2);
        h.enter_quarantine(true);
        assert!(h.take_respawn_request());
        h.enter_probation();
        assert!(h.enter_quarantine(true), "probe failure re-trips");
        assert_eq!(h.state(), HealthState::Quarantined);
        assert!(h.take_respawn_request(), "re-trip requests a respawn");
        assert!(!h.readmit(), "readmit only works from probation");
    }

    #[test]
    fn snapshots_carry_window_stats_and_counters() {
        let h = health(8, 4);
        h.record_outcome(true);
        h.record_outcome(false);
        h.trips.fetch_add(2, Ordering::Relaxed);
        h.reroutes.fetch_add(5, Ordering::Relaxed);
        let s = h.snapshot(3, false, 4);
        assert_eq!(s.shard, 3);
        assert!(!s.live);
        assert_eq!(s.state, "healthy");
        assert_eq!(s.window, 8);
        assert_eq!(s.occupancy, 2);
        assert_eq!(s.failures_in_window, 1);
        assert_eq!(s.threshold, 4);
        assert_eq!(s.trips, 2);
        assert_eq!(s.reroutes, 5);
        assert_eq!(s.probes_required, 4);
        let json = serde_json::to_value(&s).unwrap();
        assert_eq!(json["state"], "healthy");
        assert_eq!(json["failures_in_window"], 1);
    }

    #[test]
    fn force_healthy_resets_everything() {
        let h = health(4, 2);
        h.record_outcome(true);
        h.record_outcome(true);
        h.enter_quarantine(true);
        h.force_healthy();
        assert_eq!(h.state(), HealthState::Healthy);
        assert!(!h.take_respawn_request());
        let s = h.snapshot(0, true, 1);
        assert_eq!(s.failures_in_window, 0);
        assert_eq!(s.occupancy, 0);
    }
}
