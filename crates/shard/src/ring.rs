//! A stable consistent-hash ring with virtual nodes.
//!
//! Each shard contributes a fixed number of *replica points* on a
//! `u64` ring; a key routes to the shard owning the first point at or
//! clockwise-after the key's remixed hash. Because growing the ring
//! from `N` to `N + 1` shards only *adds* points, a key either keeps
//! its shard or moves to the new one — never between existing shards —
//! so ~`K / (N + 1)` of `K` keys remap, not all of them. That property
//! is what makes shard-local caches survive resizes.

/// The splitmix64 finisher: a cheap, well-distributed `u64 → u64`
/// mixer. Spec content hashes are FNV-1a, whose low bits correlate for
/// similar specs; remixing spreads ring placements uniformly.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The ring: sorted `(point, shard)` pairs, `replicas` points per
/// shard. Construction is deterministic — the same `(shards,
/// replicas)` always yields the same ring, on every host.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Ring points sorted ascending; ties (astronomically unlikely)
    /// break by shard id, keeping lookups deterministic.
    points: Vec<(u64, u32)>,
    shards: u32,
}

impl HashRing {
    /// Builds a ring of `shards` shards (clamped to ≥ 1) with
    /// `replicas` virtual nodes each (clamped to ≥ 1).
    pub fn new(shards: usize, replicas: usize) -> HashRing {
        let shards = shards.clamp(1, u32::MAX as usize) as u32;
        let replicas = replicas.max(1);
        let mut points = Vec::with_capacity(shards as usize * replicas);
        for shard in 0..shards {
            for replica in 0..replicas as u64 {
                // (shard, replica) packs uniquely below 2^64; the mixer
                // scatters the packed id across the whole ring.
                let point = mix64((u64::from(shard) << 32) | replica);
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// Routes a key (a spec content hash) to its owning shard: the
    /// shard of the first ring point at or after `mix64(key)`, wrapping
    /// to the first point past the top of the ring.
    pub fn route(&self, key: u64) -> u32 {
        let h = mix64(key);
        let i = self.points.partition_point(|&(p, _)| p < h);
        let i = if i == self.points.len() { 0 } else { i };
        self.points[i].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let ring = HashRing::new(5, 64);
        assert_eq!(ring.shards(), 5);
        let again = HashRing::new(5, 64);
        for key in 0..10_000u64 {
            let s = ring.route(key);
            assert!(s < 5);
            assert_eq!(s, again.route(key), "same ring, same routing");
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let ring = HashRing::new(0, 0);
        assert_eq!(ring.shards(), 1);
        assert_eq!(ring.route(0xdead_beef), 0);
    }

    #[test]
    fn load_is_roughly_balanced() {
        let n = 8usize;
        let ring = HashRing::new(n, 64);
        let keys = 40_000u64;
        let mut counts = vec![0u64; n];
        for key in 0..keys {
            counts[ring.route(key) as usize] += 1;
        }
        let ideal = keys / n as u64;
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                c > ideal / 3 && c < ideal * 3,
                "shard {shard} holds {c} of {keys} keys (ideal {ideal}): ring too lumpy"
            );
        }
    }

    #[test]
    fn growing_the_ring_only_moves_keys_to_the_new_shard() {
        for n in 1..=8usize {
            let before = HashRing::new(n, 64);
            let after = HashRing::new(n + 1, 64);
            let keys = 10_000u64;
            let mut moved = 0u64;
            for key in 0..keys {
                let (a, b) = (before.route(key), after.route(key));
                if a != b {
                    assert_eq!(
                        b, n as u32,
                        "key {key} moved between existing shards ({a} → {b}) growing {n} → {}",
                        n + 1
                    );
                    moved += 1;
                }
            }
            // Expected K/(N+1); allow generous slack for vnode variance.
            let expected = keys / (n as u64 + 1);
            assert!(
                moved <= expected * 2,
                "growing {n} → {} remapped {moved} of {keys} keys (expected ~{expected})",
                n + 1
            );
            if n >= 1 {
                assert!(moved > 0, "a new shard must take some keys");
            }
        }
    }
}
