//! A stable consistent-hash ring with virtual nodes.
//!
//! Each shard contributes a fixed number of *replica points* on a
//! `u64` ring; a key routes to the shard owning the first point at or
//! clockwise-after the key's remixed hash. Because growing the ring
//! from `N` to `N + 1` shards only *adds* points, a key either keeps
//! its shard or moves to the new one — never between existing shards —
//! so ~`K / (N + 1)` of `K` keys remap, not all of them. That property
//! is what makes shard-local caches survive resizes.

/// The splitmix64 finisher: a cheap, well-distributed `u64 → u64`
/// mixer. Spec content hashes are FNV-1a, whose low bits correlate for
/// similar specs; remixing spreads ring placements uniformly.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The ring: sorted `(point, shard)` pairs, `replicas` points per
/// shard. Construction is deterministic — the same `(shards,
/// replicas)` always yields the same ring, on every host.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Ring points sorted ascending; ties (astronomically unlikely)
    /// break by shard id, keeping lookups deterministic.
    points: Vec<(u64, u32)>,
    shards: u32,
}

impl HashRing {
    /// Builds a ring of `shards` shards (clamped to ≥ 1) with
    /// `replicas` virtual nodes each (clamped to ≥ 1).
    pub fn new(shards: usize, replicas: usize) -> HashRing {
        let shards = shards.clamp(1, u32::MAX as usize) as u32;
        let replicas = replicas.max(1);
        let mut points = Vec::with_capacity(shards as usize * replicas);
        for shard in 0..shards {
            for replica in 0..replicas as u64 {
                // (shard, replica) packs uniquely below 2^64; the mixer
                // scatters the packed id across the whole ring.
                let point = mix64((u64::from(shard) << 32) | replica);
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// Routes a key (a spec content hash) to its owning shard: the
    /// shard of the first ring point at or after `mix64(key)`, wrapping
    /// to the first point past the top of the ring.
    pub fn route(&self, key: u64) -> u32 {
        let h = mix64(key);
        let i = self.points.partition_point(|&(p, _)| p < h);
        let i = if i == self.points.len() { 0 } else { i };
        self.points[i].1
    }

    /// Routes a key honouring a liveness bitmask: bit `s` of `live`
    /// marks shard `s` live, and shards ≥ 64 are always treated as live
    /// (supervision quarantine only covers the first 64 shards). The
    /// walk starts at the key's pure ring position and takes the first
    /// clockwise point owned by a live shard.
    ///
    /// Skipping a dead shard's points is exactly ring growth run in
    /// reverse: the ring of `N + 1` shards with shard `N` masked out
    /// contains the same live points as the ring of `N` shards, so it
    /// routes every key identically to `HashRing::new(N, replicas)` —
    /// keys homed on the masked shard remap to their ring successor and
    /// nothing else moves. With a full mask this is `route`.
    ///
    /// Falls back to the pure route if the mask would leave the ring
    /// empty (callers never eject the last live shard, so this is a
    /// defensive path, not a policy).
    pub fn route_masked(&self, key: u64, live: u64) -> u32 {
        let h = mix64(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let n = self.points.len();
        for off in 0..n {
            let idx = start + off;
            let shard = self.points[if idx >= n { idx - n } else { idx }].1;
            if shard >= 64 || live & (1u64 << shard) != 0 {
                return shard;
            }
        }
        self.route(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let ring = HashRing::new(5, 64);
        assert_eq!(ring.shards(), 5);
        let again = HashRing::new(5, 64);
        for key in 0..10_000u64 {
            let s = ring.route(key);
            assert!(s < 5);
            assert_eq!(s, again.route(key), "same ring, same routing");
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let ring = HashRing::new(0, 0);
        assert_eq!(ring.shards(), 1);
        assert_eq!(ring.route(0xdead_beef), 0);
    }

    #[test]
    fn load_is_roughly_balanced() {
        let n = 8usize;
        let ring = HashRing::new(n, 64);
        let keys = 40_000u64;
        let mut counts = vec![0u64; n];
        for key in 0..keys {
            counts[ring.route(key) as usize] += 1;
        }
        let ideal = keys / n as u64;
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                c > ideal / 3 && c < ideal * 3,
                "shard {shard} holds {c} of {keys} keys (ideal {ideal}): ring too lumpy"
            );
        }
    }

    #[test]
    fn a_full_mask_routes_identically_to_the_pure_ring() {
        let ring = HashRing::new(6, 64);
        let full = (1u64 << 6) - 1;
        for key in 0..10_000u64 {
            assert_eq!(ring.route(key), ring.route_masked(key, full));
            assert_eq!(ring.route(key), ring.route_masked(key, u64::MAX));
        }
    }

    #[test]
    fn masking_the_last_shard_is_ring_growth_in_reverse() {
        for n in 1..=8usize {
            let grown = HashRing::new(n + 1, 64);
            let original = HashRing::new(n, 64);
            let mask = (1u64 << n) - 1; // shard n dead, 0..n live
            for key in 0..10_000u64 {
                assert_eq!(
                    grown.route_masked(key, mask),
                    original.route(key),
                    "masking shard {n} of an {}-ring must reproduce the {n}-ring",
                    n + 1
                );
            }
        }
    }

    #[test]
    fn masking_moves_only_the_dead_shards_keys() {
        let ring = HashRing::new(5, 64);
        let dead = 2u32;
        let mask = ((1u64 << 5) - 1) & !(1u64 << dead);
        let mut moved = 0u64;
        for key in 0..10_000u64 {
            let pure = ring.route(key);
            let masked = ring.route_masked(key, mask);
            assert_ne!(masked, dead, "dead shard must receive nothing");
            if pure != masked {
                assert_eq!(pure, dead, "only the dead shard's keys remap");
                moved += 1;
            }
        }
        assert!(moved > 0, "the dead shard owned some keys");
    }

    #[test]
    fn an_empty_mask_falls_back_to_the_pure_route() {
        let ring = HashRing::new(4, 64);
        for key in 0..100u64 {
            assert_eq!(ring.route_masked(key, 0), ring.route(key));
        }
    }

    #[test]
    fn growing_the_ring_only_moves_keys_to_the_new_shard() {
        for n in 1..=8usize {
            let before = HashRing::new(n, 64);
            let after = HashRing::new(n + 1, 64);
            let keys = 10_000u64;
            let mut moved = 0u64;
            for key in 0..keys {
                let (a, b) = (before.route(key), after.route(key));
                if a != b {
                    assert_eq!(
                        b,
                        n as u32,
                        "key {key} moved between existing shards ({a} → {b}) growing {n} → {}",
                        n + 1
                    );
                    moved += 1;
                }
            }
            // Expected K/(N+1); allow generous slack for vnode variance.
            let expected = keys / (n as u64 + 1);
            assert!(
                moved <= expected * 2,
                "growing {n} → {} remapped {moved} of {keys} keys (expected ~{expected})",
                n + 1
            );
            if n >= 1 {
                assert!(moved > 0, "a new shard must take some keys");
            }
        }
    }
}
