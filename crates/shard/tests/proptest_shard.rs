//! Property-based guarantees of the sharded runtime:
//!
//! 1. **Bit identity** — for any scenario, a [`ShardedEngine`] at 1, 2,
//!    or 8 shards returns a result whose serialization is byte-identical
//!    to a single [`Engine`]'s, along with the same content hash.
//!    Routing decides *where* a deterministic computation runs, never
//!    *what* it computes.
//! 2. **Minimal remap** — growing the hash ring from N to N+1 shards
//!    moves only a ~1/(N+1) fraction of keys, and every moved key lands
//!    on the *new* shard (no churn between surviving shards).

use proptest::prelude::*;
use solarstorm_engine::{
    AnalysisRequest, Engine, EngineConfig, FailureSpec, ScenarioSpec,
};
use solarstorm_shard::{HashRing, ShardConfig, ShardedEngine, DEFAULT_REPLICAS};
use std::sync::OnceLock;

/// One engine and one sharded runtime per shard count, shared across
/// proptest cases: the properties are about routing and results, not
/// startup, and each runtime carries worker threads.
fn single() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        Engine::new(EngineConfig {
            workers: 2,
            ..Default::default()
        })
    })
}

fn sharded(n: usize) -> &'static ShardedEngine {
    static SHARDED: OnceLock<Vec<ShardedEngine>> = OnceLock::new();
    let all = SHARDED.get_or_init(|| {
        [1usize, 2, 8]
            .into_iter()
            .map(|shards| {
                ShardedEngine::new(ShardConfig {
                    shards,
                    engine: EngineConfig {
                        workers: shards.max(2),
                        queue_cap: shards * 8,
                        ..Default::default()
                    },
                    ..Default::default()
                })
            })
            .collect()
    });
    match n {
        1 => &all[0],
        2 => &all[1],
        8 => &all[2],
        _ => unreachable!("only 1, 2, 8 shards are built"),
    }
}

/// Cheap-but-real scenarios: synthetic sleeps (exercise the queue and
/// cache paths) and genuine Monte Carlo statistics over the test-scale
/// network (exercise the compute path end to end).
fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    let analysis = prop_oneof![
        (0u64..2).prop_map(|ms| (AnalysisRequest::Sleep { ms }, FailureSpec::S2)),
        (0.0f64..=1.0).prop_map(|p| (AnalysisRequest::Stats, FailureSpec::Uniform { p })),
    ];
    (analysis, 1usize..4, any::<u64>()).prop_map(|((analysis, model), trials, seed)| {
        let mut spec = ScenarioSpec {
            analysis,
            model,
            ..Default::default()
        };
        spec.mc.trials = trials;
        spec.mc.seed = seed;
        spec
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_results_are_bit_identical_to_a_single_engine(spec in arb_spec()) {
        let reference = single().evaluate(&spec).unwrap();
        let reference_bytes = serde_json::to_string(&*reference.result).unwrap();
        for shards in [1usize, 2, 8] {
            let runtime = sharded(shards);
            let eval = runtime.evaluate(&spec).unwrap();
            prop_assert_eq!(eval.hash, reference.hash, "{} shards", shards);
            let bytes = serde_json::to_string(&*eval.result).unwrap();
            prop_assert_eq!(&bytes, &reference_bytes, "{} shards", shards);
            // The manifest records the home shard the router picked.
            let (home, _) = runtime.router().route_spec(&spec).unwrap();
            prop_assert_eq!(eval.manifest.shard, Some(home as u32));
        }
    }

    #[test]
    fn growing_the_ring_remaps_only_onto_the_new_shard(
        n in 1u32..9,
        keys in proptest::collection::vec(any::<u64>(), 256..1024),
    ) {
        let before = HashRing::new(n as usize, DEFAULT_REPLICAS);
        let after = HashRing::new(n as usize + 1, DEFAULT_REPLICAS);
        let mut moved = 0usize;
        for &key in &keys {
            let a = before.route(key);
            let b = after.route(key);
            if a != b {
                prop_assert_eq!(
                    b, n,
                    "a remapped key may only move to the new shard (key {:#x}: {} -> {})",
                    key, a, b
                );
                moved += 1;
            }
        }
        // Expect ~K/(N+1) moves; allow generous slack for hash variance
        // at small sample sizes, but reject wholesale reshuffles.
        let expected = keys.len() / (n as usize + 1);
        let bound = expected * 3 + 48;
        prop_assert!(
            moved <= bound,
            "moved {} of {} keys at {} -> {} shards (bound {})",
            moved, keys.len(), n, n + 1, bound
        );
    }

    #[test]
    fn routing_is_deterministic_and_in_range(
        shards in 1usize..32,
        key in any::<u64>(),
    ) {
        let ring = HashRing::new(shards, DEFAULT_REPLICAS);
        let first = ring.route(key);
        prop_assert!(first < shards as u32);
        prop_assert_eq!(ring.route(key), first);
    }
}
