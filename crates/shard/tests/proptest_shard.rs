//! Property-based guarantees of the sharded runtime:
//!
//! 1. **Bit identity** — for any scenario, a [`ShardedEngine`] at 1, 2,
//!    or 8 shards returns a result whose serialization is byte-identical
//!    to a single [`Engine`]'s, along with the same content hash.
//!    Routing decides *where* a deterministic computation runs, never
//!    *what* it computes.
//! 2. **Minimal remap** — growing the hash ring from N to N+1 shards
//!    moves only a ~1/(N+1) fraction of keys, and every moved key lands
//!    on the *new* shard (no churn between surviving shards).
//! 3. **Live-mask routing** — masking a shard out of routing (the
//!    quarantine eject) is ring growth run in reverse: deterministic
//!    given a mask, only the dead shard's keys move, and they land on
//!    live shards. Bit identity holds under an *active* quarantine too.

use proptest::prelude::*;
use solarstorm_engine::{AnalysisRequest, Engine, EngineConfig, FailureSpec, ScenarioSpec};
use solarstorm_shard::{HashRing, ShardConfig, ShardedEngine, DEFAULT_REPLICAS};
use std::sync::OnceLock;

/// One engine and one sharded runtime per shard count, shared across
/// proptest cases: the properties are about routing and results, not
/// startup, and each runtime carries worker threads.
fn single() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        Engine::new(EngineConfig {
            workers: 2,
            ..Default::default()
        })
    })
}

fn sharded(n: usize) -> &'static ShardedEngine {
    static SHARDED: OnceLock<Vec<ShardedEngine>> = OnceLock::new();
    let all = SHARDED.get_or_init(|| {
        [1usize, 2, 8]
            .into_iter()
            .map(|shards| {
                ShardedEngine::new(ShardConfig {
                    shards,
                    engine: EngineConfig {
                        workers: shards.max(2),
                        queue_cap: shards * 8,
                        ..Default::default()
                    },
                    ..Default::default()
                })
            })
            .collect()
    });
    match n {
        1 => &all[0],
        2 => &all[1],
        8 => &all[2],
        _ => unreachable!("only 1, 2, 8 shards are built"),
    }
}

/// A runtime with one shard manually quarantined and no supervisor to
/// re-admit it, shared across cases: an active quarantine reroutes the
/// dead shard's keys but must never change a result.
fn quarantined() -> &'static ShardedEngine {
    const DEAD: usize = 1;
    static QUARANTINED: OnceLock<ShardedEngine> = OnceLock::new();
    QUARANTINED.get_or_init(|| {
        let runtime = ShardedEngine::new(ShardConfig {
            shards: 3,
            supervise: false,
            engine: EngineConfig {
                workers: 3,
                queue_cap: 24,
                ..Default::default()
            },
            ..Default::default()
        });
        assert!(runtime.quarantine(DEAD));
        runtime
    })
}

/// Cheap-but-real scenarios: synthetic sleeps (exercise the queue and
/// cache paths) and genuine Monte Carlo statistics over the test-scale
/// network (exercise the compute path end to end).
fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    let analysis = prop_oneof![
        (0u64..2).prop_map(|ms| (AnalysisRequest::Sleep { ms }, FailureSpec::S2)),
        (0.0f64..=1.0).prop_map(|p| (AnalysisRequest::Stats, FailureSpec::Uniform { p })),
    ];
    (analysis, 1usize..4, any::<u64>()).prop_map(|((analysis, model), trials, seed)| {
        let mut spec = ScenarioSpec {
            analysis,
            model,
            ..Default::default()
        };
        spec.mc.trials = trials;
        spec.mc.seed = seed;
        spec
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_results_are_bit_identical_to_a_single_engine(spec in arb_spec()) {
        let reference = single().evaluate(&spec).unwrap();
        let reference_bytes = serde_json::to_string(&*reference.result).unwrap();
        for shards in [1usize, 2, 8] {
            let runtime = sharded(shards);
            let eval = runtime.evaluate(&spec).unwrap();
            prop_assert_eq!(eval.hash, reference.hash, "{} shards", shards);
            let bytes = serde_json::to_string(&*eval.result).unwrap();
            prop_assert_eq!(&bytes, &reference_bytes, "{} shards", shards);
            // The manifest records the home shard the router picked.
            let (home, _) = runtime.router().route_spec(&spec).unwrap();
            prop_assert_eq!(eval.manifest.shard, Some(home as u32));
        }
    }

    #[test]
    fn growing_the_ring_remaps_only_onto_the_new_shard(
        n in 1u32..9,
        keys in proptest::collection::vec(any::<u64>(), 256..1024),
    ) {
        let before = HashRing::new(n as usize, DEFAULT_REPLICAS);
        let after = HashRing::new(n as usize + 1, DEFAULT_REPLICAS);
        let mut moved = 0usize;
        for &key in &keys {
            let a = before.route(key);
            let b = after.route(key);
            if a != b {
                prop_assert_eq!(
                    b, n,
                    "a remapped key may only move to the new shard (key {:#x}: {} -> {})",
                    key, a, b
                );
                moved += 1;
            }
        }
        // Expect ~K/(N+1) moves; allow generous slack for hash variance
        // at small sample sizes, but reject wholesale reshuffles.
        let expected = keys.len() / (n as usize + 1);
        let bound = expected * 3 + 48;
        prop_assert!(
            moved <= bound,
            "moved {} of {} keys at {} -> {} shards (bound {})",
            moved, keys.len(), n, n + 1, bound
        );
    }

    #[test]
    fn routing_is_deterministic_and_in_range(
        shards in 1usize..32,
        key in any::<u64>(),
    ) {
        let ring = HashRing::new(shards, DEFAULT_REPLICAS);
        let first = ring.route(key);
        prop_assert!(first < shards as u32);
        prop_assert_eq!(ring.route(key), first);
    }

    #[test]
    fn results_stay_bit_identical_under_active_quarantine(spec in arb_spec()) {
        let dead = 1u32;
        let runtime = quarantined();
        let reference = single().evaluate(&spec).unwrap();
        let eval = runtime.evaluate(&spec).unwrap();
        prop_assert_eq!(eval.hash, reference.hash);
        prop_assert_eq!(
            serde_json::to_string(&*eval.result).unwrap(),
            serde_json::to_string(&*reference.result).unwrap()
        );
        prop_assert_ne!(
            eval.manifest.shard, Some(dead),
            "a quarantined shard must serve nothing"
        );
        let (home, _) = runtime.router().route_spec(&spec).unwrap();
        if home == dead as usize {
            prop_assert_eq!(eval.manifest.rerouted_from, Some(dead));
            prop_assert_eq!(eval.manifest.health_state.as_deref(), Some("quarantined"));
        } else {
            prop_assert_eq!(eval.manifest.shard, Some(home as u32));
        }
    }

    #[test]
    fn masked_routing_is_deterministic_and_lands_on_live_shards(
        shards in 2usize..16,
        dead_raw in 0usize..16,
        key in any::<u64>(),
    ) {
        let dead = dead_raw % shards;
        let ring = HashRing::new(shards, DEFAULT_REPLICAS);
        let full = (1u64 << shards) - 1;
        let mask = full & !(1u64 << dead);
        let routed = ring.route_masked(key, mask);
        prop_assert!(routed < shards as u32);
        prop_assert_ne!(routed, dead as u32, "the masked shard receives nothing");
        prop_assert_eq!(
            ring.route_masked(key, mask), routed,
            "routing is deterministic given a fixed mask"
        );
        prop_assert_eq!(
            ring.route_masked(key, full), ring.route(key),
            "a full mask is the pure ring"
        );
    }

    #[test]
    fn masking_a_shard_moves_only_its_own_keys(
        shards in 2usize..10,
        dead_raw in 0usize..10,
        keys in proptest::collection::vec(any::<u64>(), 128..512),
    ) {
        let dead = dead_raw % shards;
        let ring = HashRing::new(shards, DEFAULT_REPLICAS);
        let mask = ((1u64 << shards) - 1) & !(1u64 << dead);
        for &key in &keys {
            let pure = ring.route(key);
            let masked = ring.route_masked(key, mask);
            if pure == dead as u32 {
                prop_assert_ne!(masked, dead as u32);
            } else {
                prop_assert_eq!(
                    masked, pure,
                    "only the dead shard's keys may move (key {:#x})", key
                );
            }
        }
    }

    #[test]
    fn masking_the_newest_shard_is_ring_growth_in_reverse(
        n in 1usize..9,
        key in any::<u64>(),
    ) {
        let original = HashRing::new(n, DEFAULT_REPLICAS);
        let grown = HashRing::new(n + 1, DEFAULT_REPLICAS);
        let live = (1u64 << n) - 1; // the newest shard masked out
        prop_assert_eq!(grown.route_masked(key, live), original.route(key));
    }
}
