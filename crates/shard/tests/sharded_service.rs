//! End-to-end tests of the sharded runtime behind the real frontends:
//! the NDJSON TCP server, the batch stream loop, and the Prometheus
//! scrape endpoint all serve a [`ShardedEngine`] through the same
//! `ScenarioService` seam they use for a single engine — and the wire
//! carries the new provenance (serving shard, hedge outcome), the
//! per-shard metrics series, and the supervision health snapshots
//! (NDJSON `{"type":"health"}` and the HTTP `/health` route).

use solarstorm_engine::{
    proto, serve_stream_bounded, AnalysisRequest, EngineConfig, MetricsServer, Response,
    ScenarioSpec, Server, ServerConfig,
};
use solarstorm_shard::{ShardConfig, ShardedEngine};
use std::io::{BufRead, BufReader, Cursor, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

fn sharded(shards: usize) -> Arc<ShardedEngine> {
    Arc::new(ShardedEngine::new(ShardConfig {
        shards,
        engine: EngineConfig {
            workers: shards.max(2),
            queue_cap: shards * 8,
            ..Default::default()
        },
        ..Default::default()
    }))
}

fn sleep_spec(ms: u64, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec {
        analysis: AnalysisRequest::Sleep { ms },
        ..Default::default()
    };
    spec.mc.seed = seed;
    spec
}

fn scenario_line(id: &str, spec: &ScenarioSpec) -> String {
    format!(
        r#"{{"id":"{id}","type":"scenario","spec":{}}}"#,
        serde_json::to_string(spec).unwrap()
    )
}

fn roundtrip(addr: SocketAddr, lines: &[String]) -> Vec<Response> {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    lines
        .iter()
        .map(|l| {
            writeln!(writer, "{l}").unwrap();
            writer.flush().unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            serde_json::from_str(&resp).unwrap()
        })
        .collect()
}

#[test]
fn tcp_frontend_serves_shards_and_reports_the_serving_shard() {
    let runtime = sharded(4);
    let server =
        Server::bind("127.0.0.1:0", Arc::clone(&runtime), ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());

    let spec_a = sleep_spec(1, 101);
    let spec_b = sleep_spec(1, 102);
    let responses = roundtrip(
        addr,
        &[
            scenario_line("a", &spec_a),
            scenario_line("b", &spec_b),
            scenario_line("a-again", &spec_a),
            r#"{"id":"m","type":"metrics"}"#.to_string(),
        ],
    );

    // Scenario answers carry the shard the router picked, on the wire.
    for (resp, spec) in responses[..3].iter().zip([&spec_a, &spec_b, &spec_a]) {
        assert!(resp.ok, "{resp:?}");
        let (home, _) = runtime.router().route_spec(spec).unwrap();
        let manifest = resp
            .manifest
            .as_ref()
            .expect("scenario responses carry provenance");
        assert_eq!(manifest.shard, Some(home as u32));
    }
    // Identical requests produce byte-identical results through the
    // sharded path, exactly as through a single engine.
    assert_eq!(responses[0].hash, responses[2].hash);
    assert_eq!(
        serde_json::to_string(&responses[0].result).unwrap(),
        serde_json::to_string(&responses[2].result).unwrap()
    );

    // The metrics answer is the merged totals plus a per-shard array.
    let metrics = responses[3].result.as_ref().unwrap();
    assert_eq!(metrics["requests"], 3);
    let shards = metrics["shards"].as_array().unwrap();
    assert_eq!(shards.len(), 4);
    let per_shard_requests: u64 = shards.iter().map(|s| s["requests"].as_u64().unwrap()).sum();
    assert_eq!(per_shard_requests, 3, "per-shard series sum to the totals");
    runtime.shutdown();
}

#[test]
fn batch_stream_loop_serves_a_sharded_runtime() {
    let runtime = sharded(2);
    let input = format!(
        "{}\n{}\n",
        scenario_line("s", &sleep_spec(0, 201)),
        r#"{"type":"metrics"}"#
    );
    let mut out = Vec::new();
    serve_stream_bounded(
        &*runtime,
        Cursor::new(input.into_bytes()),
        &mut out,
        &ServerConfig::default(),
        None,
    );
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<Response> = text
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].ok && lines[1].ok);
    assert!(lines[0].manifest.as_ref().unwrap().shard.is_some());
    assert_eq!(
        lines[1].result.as_ref().unwrap()["shards"]
            .as_array()
            .unwrap()
            .len(),
        2
    );
    runtime.shutdown();
}

#[test]
fn health_requests_answer_over_ndjson_and_reflect_quarantine() {
    let runtime = sharded(3);
    let resp = proto::handle_line(&*runtime, r#"{"id":"h","type":"health"}"#);
    assert!(resp.ok);
    assert_eq!(resp.id.as_deref(), Some("h"));
    let result = resp.result.as_ref().unwrap();
    assert_eq!(result["healthy"], true, "{result}");
    let shards = result["shards"].as_array().unwrap();
    assert_eq!(shards.len(), 3);
    assert_eq!(shards[0]["state"], "healthy");
    assert_eq!(shards[0]["live"], true);

    // A manual quarantine shows up on the same wire shape.
    assert!(runtime.quarantine(2));
    let resp = proto::handle_line(&*runtime, r#"{"type":"health"}"#);
    let result = resp.result.as_ref().unwrap();
    assert_eq!(result["healthy"], false, "{result}");
    assert_eq!(result["shards"][2]["state"], "quarantined", "{result}");
    assert_eq!(result["shards"][2]["live"], false, "{result}");
    assert!(runtime.readmit(2));
    runtime.shutdown();
}

#[test]
fn health_http_route_serves_the_sharded_snapshot() {
    let runtime = sharded(2);
    let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&runtime)).unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());

    let mut s = TcpStream::connect(addr).unwrap();
    write!(s, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    assert!(head.starts_with("HTTP/1.1 200 OK"));
    assert!(head.contains("application/json"), "{head}");
    let v: serde_json::Value = serde_json::from_str(body).unwrap();
    assert_eq!(v["healthy"], true, "{v}");
    let shards = v["shards"].as_array().unwrap();
    assert_eq!(shards.len(), 2);
    // Breaker window stats ride along for dashboards.
    assert!(shards[0]["window"].as_u64().unwrap() >= 1, "{v}");
    assert_eq!(shards[0]["failures_in_window"], 0, "{v}");
    runtime.shutdown();
}

#[test]
fn prometheus_scrape_carries_shard_labels_and_unlabelled_totals() {
    let runtime = sharded(2);
    // Serve a couple of scenarios first so the counters are non-zero.
    let resp = proto::handle_line(&*runtime, &scenario_line("x", &sleep_spec(0, 301)));
    assert!(resp.ok);

    let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&runtime)).unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());

    let mut s = TcpStream::connect(addr).unwrap();
    write!(s, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    assert!(head.starts_with("HTTP/1.1 200 OK"));

    // Unlabelled totals keep their single-engine names and shapes…
    assert!(
        body.contains("# TYPE stormsim_requests_total counter"),
        "{body}"
    );
    assert!(body.contains("\nstormsim_requests_total 1\n"), "{body}");
    // …and every shard gets its own labelled series.
    for shard in 0..2 {
        assert!(
            body.contains(&format!(
                "stormsim_shard_requests_total{{shard=\"{shard}\"}}"
            )),
            "{body}"
        );
        assert!(
            body.contains(&format!("stormsim_shard_queue_depth{{shard=\"{shard}\"}}")),
            "{body}"
        );
    }
    runtime.shutdown();
}
