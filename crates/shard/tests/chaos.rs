//! Chaos suite for shard supervision: with deterministic faults wedging
//! or panicking individual shards, the sharded service keeps answering
//! every request — bit-identical to a healthy single engine — while the
//! wedged shard walks the full kill → quarantine → respawn → probation
//! → re-admission cycle.
//!
//! Compiled only with `--features chaos`. The fault registry is
//! process-global, so every test holds [`chaos_lock`] and disarms the
//! registry on entry and exit.

#![cfg(feature = "chaos")]

use solarstorm_engine::{
    AnalysisRequest, Engine, EngineConfig, MetricsServer, ScenarioSpec, Server, ServerConfig,
};
use solarstorm_obs::chaos::{self, Fault};
use solarstorm_shard::{BreakerConfig, ShardConfig, ShardedEngine};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Serializes chaos tests: the fault registry is process-global, and a
/// fault armed by one test must never fire inside another.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        // A previous test panicked while holding the lock; the registry
        // itself is not poisoned, so continue.
        Err(poisoned) => poisoned.into_inner(),
    };
    chaos::reset();
    guard
}

/// A supervised runtime with a fast sweep so recovery fits in test time.
fn supervised(shards: usize, breaker: BreakerConfig) -> ShardedEngine {
    ShardedEngine::new(ShardConfig {
        shards,
        engine: EngineConfig {
            workers: shards.max(2),
            queue_cap: shards * 32,
            ..Default::default()
        },
        breaker,
        supervisor_interval_ms: 5,
        ..Default::default()
    })
}

fn sleep_spec(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec {
        analysis: AnalysisRequest::Sleep { ms: 0 },
        ..Default::default()
    };
    spec.mc.seed = seed;
    spec
}

/// The first spec at or after `from_seed` whose pure hash home is
/// `shard` — deterministic, so replays pin the same shard.
fn spec_homed_at(runtime: &ShardedEngine, shard: usize, from_seed: u64) -> ScenarioSpec {
    (from_seed..from_seed + 100_000)
        .map(sleep_spec)
        .find(|s| runtime.router().route_spec(s).unwrap().0 == shard)
        .expect("some seed homes at the shard")
}

/// The acceptance gauntlet: one of three shards is wedged (every
/// attempt on it fails with a typed compute error), a 200-request
/// replay is answered in full with results bit-identical to a healthy
/// single engine, and once the fault lifts, the supervisor walks the
/// shard through respawn and probation until the ring routes to all
/// three shards again.
#[test]
fn a_wedged_shard_is_quarantined_served_around_and_recovers() {
    let _guard = chaos_lock();
    let runtime = supervised(
        3,
        BreakerConfig {
            window: 8,
            threshold: 4,
            probes: 2,
        },
    );
    let reference = Engine::new(EngineConfig {
        workers: 2,
        ..Default::default()
    });

    chaos::arm("shard_wedge.1", Fault::Error, 1_000_000);

    for seed in 0..200u64 {
        let spec = sleep_spec(seed);
        let eval = runtime
            .evaluate_full(&spec)
            .map_err(|f| f.error.to_string())
            .unwrap_or_else(|e| panic!("request {seed} must be answered: {e}"));
        let want = reference.evaluate(&spec).unwrap();
        assert_eq!(eval.hash, want.hash, "request {seed}");
        assert_eq!(
            serde_json::to_string(&*eval.result).unwrap(),
            serde_json::to_string(&*want.result).unwrap(),
            "request {seed}: rerouting must never change results"
        );
    }

    let health = runtime.health();
    assert!(
        health[1].trips >= 1,
        "the breaker must have tripped: {health:?}"
    );
    assert!(health[1].reroutes > 0, "{health:?}");
    assert_ne!(health[1].state, "healthy", "{health:?}");
    assert_eq!(health[0].state, "healthy", "{health:?}");
    assert_eq!(health[2].state, "healthy", "{health:?}");
    assert!(chaos::fired_count("shard_wedge.1") > 0);

    // Fault lifted: home-keyed traffic drives probation until the
    // supervisor re-admits the shard.
    chaos::reset();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut seed = 1_000_000u64;
    while runtime.health()[1].state != "healthy" {
        assert!(
            Instant::now() < deadline,
            "shard 1 must recover: {:?}",
            runtime.health()
        );
        let spec = spec_homed_at(&runtime, 1, seed);
        seed += 1;
        runtime
            .evaluate(&spec)
            .expect("requests keep answering during recovery");
        std::thread::sleep(Duration::from_millis(2));
    }

    let health = runtime.health();
    assert!(health[1].respawns >= 1, "{health:?}");
    assert!(health[1].live, "{health:?}");
    assert_eq!(
        runtime.router().live_mask() & 0b111,
        0b111,
        "the ring must route to all three shards again"
    );
    // …and the recovered shard actually serves its home keys.
    let spec = spec_homed_at(&runtime, 1, 2_000_000);
    let eval = runtime.evaluate(&spec).unwrap();
    assert_eq!(eval.manifest.shard, Some(1));
    assert!(eval.manifest.rerouted_from.is_none());
    runtime.shutdown();
    chaos::reset();
}

/// A panic at the shard boundary surfaces as the typed `panic` error,
/// feeds the breaker, and the request retries once on the live ring
/// successor — stamped with reroute provenance.
#[test]
fn a_shard_panic_is_caught_typed_and_retried_on_the_successor() {
    let _guard = chaos_lock();
    let runtime = ShardedEngine::new(ShardConfig {
        shards: 2,
        engine: EngineConfig {
            workers: 2,
            queue_cap: 16,
            ..Default::default()
        },
        supervise: false,
        ..Default::default()
    });
    chaos::arm("shard_panic_storm.0", Fault::Panic, 1);

    let spec = spec_homed_at(&runtime, 0, 0);
    let eval = runtime
        .evaluate_full(&spec)
        .map_err(|f| f.error.to_string())
        .expect("the retry on the sibling answers");
    assert_eq!(eval.manifest.shard, Some(1), "served by the successor");
    assert_eq!(eval.manifest.rerouted_from, Some(0));
    assert_eq!(chaos::fired_count("shard_panic_storm.0"), 1);

    let health = runtime.health();
    assert_eq!(health[0].failures_in_window, 1, "{health:?}");
    assert_eq!(health[0].reroutes, 1, "{health:?}");
    runtime.shutdown();
    chaos::reset();
}

/// The CI smoke, end to end over TCP: a three-shard service with shard
/// 1 wedged answers every request on the wire, reports the reroutes in
/// both the `/health` JSON and the Prometheus text, and leaves the
/// health snapshot on disk for the CI artifact upload.
#[test]
fn tcp_shard_kill_smoke_answers_everything_and_reports_reroutes() {
    let _guard = chaos_lock();
    let runtime = Arc::new(supervised(
        3,
        BreakerConfig {
            window: 4,
            threshold: 2,
            probes: 2,
        },
    ));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&runtime), ServerConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());
    let metrics = MetricsServer::bind("127.0.0.1:0", Arc::clone(&runtime)).unwrap();
    let maddr = metrics.local_addr().unwrap();
    std::thread::spawn(move || metrics.run());

    chaos::arm("shard_wedge.1", Fault::Error, 1_000_000);

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut ok = 0usize;
    for seed in 0..40u64 {
        let spec = sleep_spec(seed);
        writeln!(
            writer,
            r#"{{"id":"{seed}","type":"scenario","spec":{}}}"#,
            serde_json::to_string(&spec).unwrap()
        )
        .unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        let n = reader.read_line(&mut line).unwrap();
        assert!(n > 0, "connection must stay open at request {seed}");
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_ne!(v["error"]["code"], "panic", "{line}");
        if v["ok"] == true {
            ok += 1;
        }
    }

    // Snapshot the health endpoint to disk first, so a failing assert
    // below still leaves the artifact for CI to upload.
    let mut s = TcpStream::connect(maddr).unwrap();
    write!(s, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let (_head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let artifact =
        std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("shard_health_smoke.json");
    std::fs::write(&artifact, body).unwrap();

    assert_eq!(ok, 40, "every request must be answered successfully");
    let v: serde_json::Value = serde_json::from_str(body).unwrap();
    assert_eq!(v["healthy"], false, "{v}");
    assert!(
        v["shards"][1]["reroutes"].as_u64().unwrap() > 0,
        "the wedged shard's keys must have been rerouted: {v}"
    );

    // The same reroutes show on the Prometheus scrape.
    let mut s = TcpStream::connect(maddr).unwrap();
    write!(s, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let reroutes: u64 = raw
        .lines()
        .find_map(|l| l.strip_prefix("stormsim_shard_reroutes_total{shard=\"1\"} "))
        .expect("reroutes series present")
        .trim()
        .parse()
        .unwrap();
    assert!(reroutes > 0);
    runtime.shutdown();
    chaos::reset();
}
