//! Mitigation & planning integration (§5): shutdown strategy, lead-time
//! planning, topology augmentation and grid coupling, all running on the
//! generated submarine network.

use solarstorm::sim::augment;
use solarstorm::sim::cascade::{self, GridFailureModel};
use solarstorm::sim::mitigation;
use solarstorm::sim::monte_carlo::MonteCarloConfig;
use solarstorm::{Cme, LatitudeBandFailure, StormClass, Study};

fn study() -> &'static Study {
    static CACHE: std::sync::OnceLock<Study> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| Study::test_scale().expect("test-scale build"))
}

fn cfg(trials: usize) -> MonteCarloConfig {
    MonteCarloConfig {
        spacing_km: 150.0,
        trials,
        seed: 31,
        ..Default::default()
    }
}

#[test]
fn shutdown_helps_most_for_moderate_storms() {
    let net = &study().datasets().submarine;
    let moderate = mitigation::shutdown_ablation(net, StormClass::Moderate, &cfg(30)).unwrap();
    let extreme = mitigation::shutdown_ablation(net, StormClass::Extreme, &cfg(30)).unwrap();
    // §5.2: powering off "can help only when the threat is moderate".
    assert!(moderate.cables_saved_pct >= -1.0);
    // Extreme storms still devastate the powered-off fleet.
    assert!(
        extreme.shutdown.mean_cables_failed_pct > 0.6 * extreme.powered.mean_cables_failed_pct,
        "shutdown {} vs powered {}",
        extreme.shutdown.mean_cables_failed_pct,
        extreme.powered.mean_cables_failed_pct
    );
}

#[test]
fn fleet_shutdown_fits_in_carrington_lead_time() {
    // 13+ hours of warning; ~1,100 landing stations; a coordinated
    // campaign at 100 stations/hour fits.
    let net = &study().datasets().submarine;
    let cme = Cme::typical(StormClass::Extreme);
    let plan = mitigation::lead_time_plan(&cme, net.node_count(), 100.0, 1.0).unwrap();
    assert!(plan.feasible, "{plan:?}");
    // A slow bureaucracy (10 stations/hour) does not fit.
    let slow = mitigation::lead_time_plan(&cme, net.node_count(), 10.0, 1.0).unwrap();
    assert!(!slow.feasible);
}

#[test]
fn augmentation_helps_on_the_real_network() {
    let net = &study().datasets().submarine;
    let model = LatitudeBandFailure::s1();
    let candidates = augment::low_latitude_candidates(net, 40.0, 1_000.0, 9_000.0, 1.15, 25);
    assert!(!candidates.is_empty());
    let steps = augment::greedy_augment(net, &model, &cfg(8), &candidates, 1).unwrap();
    assert_eq!(steps.len(), 1);
    // Greedy never picks a cable that makes things worse.
    assert!(steps[0].after_pct <= steps[0].before_pct + 0.5);
}

#[test]
fn grid_coupling_strictly_amplifies_failures() {
    let net = &study().datasets().submarine;
    let stats = cascade::run_coupled(
        net,
        &LatitudeBandFailure::s2(),
        &GridFailureModel::severe(),
        &cfg(20),
    )
    .unwrap();
    assert!(
        stats.mean_cables_failed_coupled_pct >= stats.mean_cables_failed_repeaters_pct,
        "coupling can only add failures"
    );
    assert!(stats.mean_stations_dark_pct > 0.0);
    // §5.5's point: the coupled number is materially worse.
    assert!(
        stats.mean_cables_failed_coupled_pct > stats.mean_cables_failed_repeaters_pct + 2.0,
        "coupled {} vs repeaters {}",
        stats.mean_cables_failed_coupled_pct,
        stats.mean_cables_failed_repeaters_pct
    );
}
