//! End-to-end pipeline over a hand-built network: JSON in, physics
//! chain, Monte Carlo out. Exercises every layer working together on a
//! topology small enough to verify by hand.

use solarstorm::data::io;
use solarstorm::geo::GeoPoint;
use solarstorm::sim::monte_carlo::{run, run_outcomes, MonteCarloConfig};
use solarstorm::topology::{Network, NetworkKind, NodeInfo, NodeRole, SegmentSpec};
use solarstorm::{
    Cme, FailureModel, LatitudeBandFailure, PhysicsFailure, StormClass, UniformFailure,
};

/// Three-cable miniature: polar trunk, mid-latitude trunk, equatorial
/// festoon.
fn mini() -> Network {
    let mut net = Network::new(NetworkKind::Submarine);
    let mk = |net: &mut Network, name: &str, lat: f64, lon: f64, cc: &str| {
        net.add_node(NodeInfo {
            name: name.into(),
            location: GeoPoint::new(lat, lon).unwrap(),
            country: cc.into(),
            role: NodeRole::LandingPoint,
        })
    };
    let oslo = mk(&mut net, "Oslo", 59.9, 10.7, "NO");
    let reyk = mk(&mut net, "Reykjavik", 64.1, -21.9, "IS");
    let ny = mk(&mut net, "New York", 40.7, -74.0, "US");
    let lis = mk(&mut net, "Lisbon", 38.7, -9.1, "PT");
    let sin = mk(&mut net, "Singapore", 1.3, 103.8, "SG");
    let jak = mk(&mut net, "Jakarta", -6.2, 106.8, "ID");
    net.add_cable(
        "polar",
        vec![SegmentSpec {
            a: oslo,
            b: reyk,
            route: None,
            length_km: Some(2_000.0),
        }],
    )
    .unwrap();
    net.add_cable(
        "midlat",
        vec![SegmentSpec {
            a: ny,
            b: lis,
            route: None,
            length_km: Some(6_000.0),
        }],
    )
    .unwrap();
    net.add_cable(
        "festoon",
        vec![SegmentSpec {
            a: sin,
            b: jak,
            route: None,
            length_km: Some(120.0),
        }],
    )
    .unwrap();
    net
}

#[test]
fn json_round_trip_then_simulate() {
    let net = mini();
    let json = io::network_to_json(&net).unwrap();
    let net2 = io::network_from_json(&json).unwrap();
    let model = LatitudeBandFailure::s1();
    let cfg = MonteCarloConfig {
        trials: 64,
        spacing_km: 150.0,
        seed: 5,
        ..Default::default()
    };
    let a = run(&net, &model, &cfg).unwrap();
    let b = run(&net2, &model, &cfg).unwrap();
    assert_eq!(a, b, "round-tripped network must behave identically");
}

#[test]
fn band_model_hits_expected_closed_forms() {
    // polar: 13 repeaters @150km, p=1   -> dies always under S1.
    // midlat: 39 repeaters, p=0.1        -> survives 0.9^39 ≈ 1.6%.
    // festoon: 0 repeaters               -> never dies.
    let net = mini();
    let model = LatitudeBandFailure::s1();
    let cfg = MonteCarloConfig {
        trials: 4_000,
        spacing_km: 150.0,
        seed: 11,
        ..Default::default()
    };
    let outcomes = run_outcomes(&net, &model, &cfg).unwrap();
    let death_rate =
        |idx: usize| outcomes.iter().filter(|o| o.dead[idx]).count() as f64 / outcomes.len() as f64;
    assert_eq!(death_rate(0), 1.0, "polar trunk");
    let mid = death_rate(1);
    let expected = 1.0 - 0.9f64.powi(39);
    assert!(
        (mid - expected).abs() < 0.02,
        "midlat death rate {mid} vs closed form {expected}"
    );
    assert_eq!(death_rate(2), 0.0, "festoon");
}

#[test]
fn physics_chain_orders_storm_classes() {
    let net = mini();
    let cfg = MonteCarloConfig {
        trials: 400,
        spacing_km: 150.0,
        seed: 3,
        ..Default::default()
    };
    let mut previous = -1.0;
    for class in StormClass::ALL {
        let stats = run(&net, &PhysicsFailure::calibrated(class), &cfg).unwrap();
        assert!(
            stats.mean_cables_failed_pct >= previous - 2.0,
            "{class:?} broke monotonicity"
        );
        previous = stats.mean_cables_failed_pct;
    }
    // Extreme storms kill the polar trunk essentially always.
    let extreme = run(&net, &PhysicsFailure::calibrated(StormClass::Extreme), &cfg).unwrap();
    assert!(extreme.mean_cables_failed_pct >= 60.0);
}

#[test]
fn cme_lead_time_consistent_with_class() {
    // Faster (stronger) CMEs leave less time to act.
    let extreme = Cme::typical(StormClass::Extreme);
    let moderate = Cme::typical(StormClass::Moderate);
    assert!(extreme.transit_hours() < moderate.transit_hours());
    assert!(extreme.lead_time_hours(2.0) < moderate.lead_time_hours(2.0));
}

#[test]
fn uniform_and_band_models_agree_when_flat() {
    // A band model with equal probabilities in every band IS the uniform
    // model — cable survival must match exactly.
    let net = mini();
    let flat = LatitudeBandFailure::new([0.05, 0.05, 0.05]).unwrap();
    let uniform = UniformFailure::new(0.05).unwrap();
    let profiles = solarstorm::sim::cable_profiles(&net);
    for p in &profiles {
        assert_eq!(
            flat.cable_survival_probability(p, 150.0),
            uniform.cable_survival_probability(p, 150.0)
        );
    }
}
