//! Cross-crate figure integration: every figure of the paper renders,
//! exports, and carries the qualitative findings end-to-end.

use solarstorm::analysis::countries::FailureState;
use solarstorm::Study;

fn study() -> &'static Study {
    static CACHE: std::sync::OnceLock<Study> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| Study::test_scale().expect("test-scale build"))
}

#[test]
fn every_figure_renders_ascii_and_csv() {
    let s = study();
    let figures = vec![
        s.fig3(),
        s.fig4a(),
        s.fig4b(),
        s.fig5(),
        s.fig6(150.0).unwrap(),
        s.fig7(150.0).unwrap(),
        s.fig8().unwrap(),
        s.fig9a(),
        s.fig9b(),
    ];
    for fig in &figures {
        let ascii = fig.render_ascii(60, 15);
        assert!(ascii.contains(&fig.title), "{}", fig.id);
        let csv = fig.to_csv();
        assert!(csv.starts_with("series,x,y,err"), "{}", fig.id);
        assert!(csv.lines().count() > fig.series.len(), "{}", fig.id);
    }
}

#[test]
fn fig6_panels_ordered_by_spacing() {
    // Tighter repeater spacing = more repeaters = more failures, at every
    // probability, for the submarine network.
    let s = study();
    let f50 = s.fig6(50.0).unwrap();
    let f150 = s.fig6(150.0).unwrap();
    let sub50 = &f50.series[0];
    let sub150 = &f150.series[0];
    for (a, b) in sub50.points.iter().zip(&sub150.points) {
        assert!(
            a.1 >= b.1 - 3.0,
            "at p={}: 50 km {} vs 150 km {}",
            a.0,
            a.1,
            b.1
        );
    }
}

#[test]
fn fig7_tracks_fig6_direction() {
    // Node unreachability grows with cable failures.
    let s = study();
    let f6 = s.fig6(100.0).unwrap();
    let f7 = s.fig7(100.0).unwrap();
    for (c, n) in f6.series[0].points.iter().zip(&f7.series[0].points) {
        // More cable failures can only mean equal-or-more unreachable
        // nodes than a quarter of the rate (loose structural sanity).
        assert!(n.1 <= c.1 + 15.0, "nodes {} vs cables {}", n.1, c.1);
    }
    let last6 = f6.series[0].points.last().unwrap().1;
    let last7 = f7.series[0].points.last().unwrap().1;
    assert!(last6 > 50.0 && last7 > 50.0);
}

#[test]
fn marquee_country_findings_end_to_end() {
    let s = study();
    let s1 = s.countries(FailureState::S1).unwrap();
    let get = |c: &str, to: &str| {
        s1.iter()
            .find(|r| r.country == c)
            .and_then(|r| r.pairs.iter().find(|p| p.to == to))
            .map(|p| p.connectivity_probability)
            .unwrap()
    };
    // US-Europe far worse than Brazil-Europe under high failures.
    assert!(get("BR", "PT") > get("US", "GB") + 0.2);
    // Singapore's hub role survives.
    assert!(get("SG", "ID") > 0.3 || get("SG", "IN") > 0.3 || get("SG", "AU") > 0.3);
    // New Zealand keeps Australia.
    assert!(get("NZ", "AU") >= get("NZ", "US"));
}

#[test]
fn figures_are_deterministic() {
    let s = study();
    let a = s.fig6(150.0).unwrap();
    let b = s.fig6(150.0).unwrap();
    assert_eq!(a, b);
    let c = s.fig8().unwrap();
    let d = s.fig8().unwrap();
    assert_eq!(c, d);
}
