//! Integration tests for the extension analyses: satellites, repair,
//! partitions, traffic, isolation, risk, economics — all running against
//! the generated datasets through the `Study` facade.

use solarstorm::analysis::countries::FailureState;
use solarstorm::analysis::{economics, maps, risk};
use solarstorm::sim::isolation::{self, CouplingModel};
use solarstorm::sim::monte_carlo::run_outcomes;
use solarstorm::sim::repair::{self, RepairFleet, RepairStrategy};
use solarstorm::{PhysicsFailure, StormClass, Study};

fn study() -> &'static Study {
    static CACHE: std::sync::OnceLock<Study> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| Study::test_scale().expect("test-scale build"))
}

#[test]
fn satellite_impact_orders_with_storm_class() {
    let s = study();
    let minor = s.satellite_impact(StormClass::Minor).unwrap();
    let extreme = s.satellite_impact(StormClass::Extreme).unwrap();
    assert!(extreme.total_lost > minor.total_lost);
    // The Feb-2022 mechanism shows even in minor storms.
    assert!(minor.decay_lost > 0.0);
}

#[test]
fn carrington_recovery_takes_months_not_days() {
    let s = study();
    let net = &s.datasets().submarine;
    let model = PhysicsFailure::calibrated(StormClass::Extreme);
    let outcome = &run_outcomes(net, &model, &s.mc_config(150.0)).unwrap()[0];
    let out = repair::simulate_repairs(
        net,
        &outcome.dead,
        &RepairFleet::default(),
        RepairStrategy::ConnectivityGreedy,
    )
    .unwrap();
    // The paper's stake: outages "lasting several months".
    assert!(
        out.days_to_95pct_nodes > 60.0,
        "95% recovery in {} days",
        out.days_to_95pct_nodes
    );
    // Prioritization matters: greedy beats FIFO to 95% reachability.
    let fifo = repair::simulate_repairs(
        net,
        &outcome.dead,
        &RepairFleet::default(),
        RepairStrategy::Fifo,
    )
    .unwrap();
    assert!(out.days_to_95pct_nodes <= fifo.days_to_95pct_nodes);
}

#[test]
fn as_impact_grows_with_footprint_and_severity() {
    let s = study();
    let s1 = s.as_impact(&FailureState::S1.model()).unwrap();
    let s2 = s.as_impact(&FailureState::S2.model()).unwrap();
    assert!(s1.overall_impact_probability >= s2.overall_impact_probability);
    // Global footprints are the most exposed in both states.
    for report in [&s1, &s2] {
        let global = report
            .by_footprint
            .iter()
            .find(|f| f.footprint == solarstorm::data::routers::AsFootprint::Global)
            .unwrap();
        let metro = report
            .by_footprint
            .iter()
            .find(|f| f.footprint == solarstorm::data::routers::AsFootprint::Metro)
            .unwrap();
        assert!(global.impact_probability + 1e-9 >= metro.impact_probability);
    }
}

#[test]
fn partitions_and_traffic_cohere() {
    let s = study();
    let model = FailureState::S1.model();
    let parts = s.partition_report(&model).unwrap();
    let traffic = s.traffic_report(&model).unwrap();
    // A storm that splinters the network must also strand or reroute
    // traffic.
    if parts.partitions.len() > 2 {
        assert!(
            traffic.stranded_after > 0.0 || traffic.max_growth > 1.0,
            "fragmented network but no traffic effect: {traffic:?}"
        );
    }
    assert!(traffic.routed_after <= traffic.routed_before + 1e-9);
}

#[test]
fn isolation_always_dominates_no_isolation() {
    let s = study();
    let out = isolation::isolation_ablation(
        &s.datasets().submarine,
        &FailureState::S2.model(),
        &CouplingModel::default(),
        &s.mc_config(150.0),
    )
    .unwrap();
    assert!(out.unisolated_cables_failed_pct >= out.isolated_cables_failed_pct);
    assert!(out.mean_cascades >= 0.0);
}

#[test]
fn risk_outlook_matches_paper_band() {
    let risks = risk::decade_risks(2026.0, 3, 1_000, 42).unwrap();
    for r in &risks {
        // The paper quotes 1.6-12% per decade for a large-scale event.
        assert!(
            (0.005..=0.15).contains(&r.modulated),
            "decade risk {} outside the plausible band",
            r.modulated
        );
    }
}

#[test]
fn economics_scale_with_severity() {
    let s = study();
    let e1 =
        economics::reproduce(s.datasets(), &FailureState::S1.model(), &s.mc_config(150.0)).unwrap();
    let e2 =
        economics::reproduce(s.datasets(), &FailureState::S2.model(), &s.mc_config(150.0)).unwrap();
    assert!(e1.first_day_cost_busd > e2.first_day_cost_busd);
    // US should be among the costliest countries under S1 (it is the
    // largest digital economy with the most exposed cables).
    assert!(
        e1.top_countries.iter().any(|(c, _)| c == "US"),
        "top countries: {:?}",
        e1.top_countries
    );
}

#[test]
fn world_maps_show_the_northern_skew() {
    let s = study();
    let map = maps::fig1_infrastructure_map(s.datasets(), 100, 30);
    assert!(map.contains("40N"));
    // Fig 2 renders with both operators' fleets.
    let dc = maps::fig2_datacenter_map(100, 30);
    assert!(dc.contains("Fig. 2"));
}
