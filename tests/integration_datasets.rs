//! Paper-scale dataset integration: the calibration targets that only
//! hold at full size (length distributions, network ordering) are
//! checked here, on the exact datasets the benchmarks use.

use solarstorm::analysis::headline;
use solarstorm::data::io;
use solarstorm::Study;

fn study() -> &'static Study {
    static CACHE: std::sync::OnceLock<Study> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| Study::paper_scale().expect("paper-scale build"))
}

#[test]
fn paper_scale_counts() {
    let d = study().datasets();
    assert_eq!(d.submarine.cable_count(), 470);
    assert!((800..=1_600).contains(&d.submarine.node_count()));
    assert_eq!(d.intertubes.cable_count(), 542);
    assert_eq!(d.intertubes.node_count(), 273);
    assert_eq!(d.itu.cable_count(), 11_737);
    assert!((10_000..=11_500).contains(&d.itu.node_count()));
    assert_eq!(d.dns.len(), 1_076);
    assert_eq!(d.ixps.len(), 1_026);
    assert_eq!(d.routers.routers.len(), 200_000);
    assert_eq!(d.routers.ases.len(), 8_000);
}

#[test]
fn every_headline_statistic_within_tolerance_at_full_scale() {
    let rows = headline::reproduce(study().datasets());
    for r in &rows {
        assert!(
            r.relative_error() < 0.40,
            "{}: paper {} vs measured {}",
            r.metric,
            r.paper,
            r.measured
        );
    }
    // The marquee numbers deserve tighter bands.
    let get = |m: &str| {
        rows.iter()
            .find(|r| r.metric.starts_with(m))
            .unwrap_or_else(|| panic!("row {m}"))
            .measured
    };
    assert!((26.0..=36.0).contains(&get("submarine endpoints above 40°")));
    assert!((13.0..=19.0).contains(&get("population above 40°")));
    assert!((600.0..=1_000.0).contains(&get("submarine median length")));
    // Segment lengths are allocated proportionally, so the SEA-ME-WE-3
    // total reassembles to 39,000 km only up to float rounding.
    assert!((get("submarine max length") - 39_000.0).abs() < 1e-6);
}

#[test]
fn land_network_ordering_holds_at_full_scale() {
    // Fig 6 ordering at p=0.01/150 km: submarine >> Intertubes > ITU.
    use solarstorm::analysis::fig6;
    let results = fig6::sweep_all(study().datasets(), 150.0, 10, 77).unwrap();
    let at = |idx: usize| {
        results[idx]
            .points
            .iter()
            .find(|(p, _)| (*p - 0.01).abs() < 1e-12)
            .map(|(_, s)| s.mean_cables_failed_pct)
            .unwrap()
    };
    let (sub, us, itu) = (at(0), at(1), at(2));
    assert!(sub > 3.0 * us, "submarine {sub}% vs US {us}%");
    assert!(us > itu, "US {us}% vs ITU {itu}%");
    assert!(
        (9.0..=24.0).contains(&sub),
        "submarine {sub}% vs paper 14.9%"
    );
    assert!((0.2..=1.6).contains(&itu), "ITU {itu}% vs paper 0.6%");
}

#[test]
fn json_round_trip_preserves_full_submarine_network() {
    let d = study().datasets();
    let json = io::network_to_json(&d.submarine).unwrap();
    let back = io::network_from_json(&json).unwrap();
    assert_eq!(back.cable_count(), d.submarine.cable_count());
    assert_eq!(back.node_count(), d.submarine.node_count());
    // Failure behavior must be identical: same repeater counts.
    for (a, b) in d.submarine.cables().iter().zip(back.cables()) {
        assert_eq!(a.repeater_count(150.0), b.repeater_count(150.0));
    }
}

#[test]
fn generators_are_reproducible_across_builds() {
    let a = Study::paper_scale().unwrap();
    let d1 = study().datasets();
    let d2 = a.datasets();
    let sum1: f64 = d1.submarine.cables().iter().map(|c| c.length_km).sum();
    let sum2: f64 = d2.submarine.cables().iter().map(|c| c.length_km).sum();
    assert_eq!(sum1, sum2);
    assert_eq!(d1.routers.routers[4242], d2.routers.routers[4242]);
}
